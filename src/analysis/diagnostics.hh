/**
 * @file
 * Structured diagnostics shared by the static-analysis passes.
 *
 * Both lint passes (netlist and program) emit Diagnostic records
 * rather than printing: the flexilint CLI renders them as text or
 * JSON, the test suite asserts on individual rules, and the kernel
 * runner turns errors into hard failures in debug builds. Severity
 * determines the CI exit code: a report is "clean" iff it contains
 * no Error-severity findings (warnings document smells — e.g. code
 * that relies on the power-on register state — without failing the
 * build).
 */

#ifndef FLEXI_ANALYSIS_DIAGNOSTICS_HH
#define FLEXI_ANALYSIS_DIAGNOSTICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace flexi
{

/** How bad a finding is. */
enum class Severity : uint8_t
{
    Note,      ///< informational, never fails anything
    Warning,   ///< a smell; fails only under --werror
    Error,     ///< electrically or architecturally wrong
};

const char *severityName(Severity severity);

/** One lint finding. */
struct Diagnostic
{
    Severity severity = Severity::Warning;
    /** Stable kebab-case rule id, e.g. "comb-loop" (docs/LINT.md). */
    std::string rule;
    /** Netlist module tag, or "page<N>" for program findings. */
    std::string module;
    /** Nets involved (netlist findings only). */
    std::vector<NetId> nets;
    /** Program location; -1 when not applicable. */
    int page = -1;
    int addr = -1;
    std::string message;
    /**
     * Stable names for `nets`, resolved through the netlist name
     * table (LintReport::resolveNetNames()). JSON output renders
     * these instead of bare NetId integers, so reports stay
     * meaningful across netlist re-elaboration.
     */
    std::vector<std::string> netNames;
};

/** The outcome of one lint pass (or several, concatenated). */
class LintReport
{
  public:
    void add(Diagnostic diag) { diags_.push_back(std::move(diag)); }
    void append(const LintReport &other);

    /**
     * Fill every diagnostic's netNames from its nets via the
     * netlist's name table. Passes call this once after emitting
     * their findings.
     */
    void resolveNetNames(const Netlist &nl);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }

    size_t count(Severity severity) const;
    size_t errors() const { return count(Severity::Error); }
    size_t warnings() const { return count(Severity::Warning); }

    /** No errors (warnings and notes allowed). */
    bool clean() const { return errors() == 0; }

    /**
     * Canonicalize for byte-stable rendering: stable sort by (rule,
     * module, page, addr, nets, message), then drop exact duplicate
     * findings. flexilint normalizes every report before rendering,
     * so --json output is independent of pass ordering, append()
     * order, and thread count.
     */
    void normalize();

    /** Findings for one rule id (test helper). */
    std::vector<Diagnostic> byRule(const std::string &rule) const;
    bool fires(const std::string &rule) const
    {
        return !byRule(rule).empty();
    }

    /**
     * Human-readable rendering, one finding per line:
     *   error[comb-loop] alu: NAND2 #5 ... -> ...
     * @p subject prefixes every line (netlist or program name).
     */
    std::string text(const std::string &subject) const;

    /** JSON array-of-objects rendering for tool consumption. */
    std::string json(const std::string &subject) const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace flexi

#endif // FLEXI_ANALYSIS_DIAGNOSTICS_HH
