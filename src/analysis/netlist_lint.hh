/**
 * @file
 * Electrical-rule lint over a gate-level Netlist.
 *
 * The yield and fault-coverage experiments assume every structural
 * netlist is electrically well-formed; this pass checks that
 * mechanically instead of by eyeball (docs/LINT.md has the full rule
 * catalogue):
 *
 *  - unconnected-input (error): a cell input left at kNoNet;
 *  - undriven-net      (error): a net consumed by a cell or primary
 *    output but driven by nothing;
 *  - multiple-drivers  (error): a net driven by more than one cell
 *    output (or a cell output shorted to a primary input);
 *  - comb-loop         (error): a combinational cycle, reported as
 *    the actual cell path with module tags and net names;
 *  - fanout-limit      (error): a net loaded beyond its driver's
 *    drive limit from the cell library (pads use kPadMaxFanout);
 *  - dead-logic      (warning): cells whose output reaches no
 *    primary output or DFF, aggregated per module;
 *  - const-output    (warning): gates whose output is statically
 *    constant under forward constant propagation from the const0 /
 *    const1 rails.
 *
 * The pass works on un-elaborated netlists, so deliberately broken
 * fixtures can be linted without tripping elaborate()'s panics.
 */

#ifndef FLEXI_ANALYSIS_NETLIST_LINT_HH
#define FLEXI_ANALYSIS_NETLIST_LINT_HH

#include "analysis/diagnostics.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** Run all netlist lint rules over @p nl. */
LintReport lintNetlist(const Netlist &nl);

} // namespace flexi

#endif // FLEXI_ANALYSIS_NETLIST_LINT_HH
