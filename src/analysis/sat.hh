/**
 * @file
 * A small self-contained CDCL SAT solver.
 *
 * This is the decision engine behind the formal checker: conflict-
 * driven clause learning with two-watched-literal propagation, 1UIP
 * conflict analysis, VSIDS-style activity ordering, phase saving,
 * Luby restarts, and solving under assumptions (used to check one
 * instruction class of a miter at a time without rebuilding the CNF).
 *
 * The instances we solve are miters over a few hundred standard
 * cells — thousands of variables, tens of thousands of clauses — so
 * the solver favors clarity over heroics: no clause-database
 * reduction, no preprocessing. Equivalence proofs on these netlists
 * complete in milliseconds.
 */

#ifndef FLEXI_ANALYSIS_SAT_HH
#define FLEXI_ANALYSIS_SAT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexi
{

/** Variable index (0-based). */
using SatVar = int;

/**
 * A literal: variable with polarity, encoded as 2*var (positive) or
 * 2*var+1 (negated), so negation is an XOR and literals index arrays
 * directly.
 */
struct SatLit
{
    int code = -1;

    SatLit() = default;
    static SatLit make(SatVar v, bool negated = false)
    {
        SatLit l;
        l.code = 2 * v + (negated ? 1 : 0);
        return l;
    }
    SatVar var() const { return code >> 1; }
    bool negated() const { return (code & 1) != 0; }
    SatLit operator~() const
    {
        SatLit l;
        l.code = code ^ 1;
        return l;
    }
    bool operator==(const SatLit &o) const { return code == o.code; }
    bool operator!=(const SatLit &o) const { return code != o.code; }
};

class SatSolver
{
  public:
    enum class Result { Sat, Unsat };

    struct Stats
    {
        uint64_t decisions = 0;
        uint64_t propagations = 0;
        uint64_t conflicts = 0;
        uint64_t restarts = 0;
    };

    SatVar newVar();
    int numVars() const { return static_cast<int>(assign_.size()); }

    /**
     * Add a clause (empty clause or conflicting unit makes the
     * formula trivially unsatisfiable; later solve() calls return
     * Unsat). Returns false iff the formula is already known
     * unsatisfiable at the root level.
     */
    bool addClause(std::vector<SatLit> lits);

    /**
     * Solve the formula under the given assumption literals. The
     * model (on Sat) assigns every variable; assumptions hold in it.
     * Incremental: clauses learned in one call carry over.
     */
    Result solve(const std::vector<SatLit> &assumptions = {});

    /** Model value of a variable after a Sat result. */
    bool modelValue(SatVar v) const;
    bool modelValue(SatLit l) const
    {
        return modelValue(l.var()) != l.negated();
    }

    const Stats &stats() const { return stats_; }

  private:
    // Assignment lattice: 0 = true, 1 = false, 2 = unassigned
    // (tri-state chosen so `assign_[v] == lit.negated()` tests a
    // literal's truth in one compare).
    static constexpr uint8_t kTrue = 0;
    static constexpr uint8_t kFalse = 1;
    static constexpr uint8_t kUnassigned = 2;

    static constexpr int kNoReason = -1;

    struct Watcher
    {
        int clause;      ///< index into clauses_
        SatLit blocker;  ///< often-true literal checked first
    };

    bool litTrue(SatLit l) const
    {
        return assign_[l.var()] == (l.negated() ? kFalse : kTrue);
    }
    bool litFalse(SatLit l) const
    {
        return assign_[l.var()] == (l.negated() ? kTrue : kFalse);
    }
    bool litUnassigned(SatLit l) const
    {
        return assign_[l.var()] == kUnassigned;
    }

    void enqueue(SatLit l, int reason);
    int propagate();   ///< conflicting clause index or kNoReason
    void analyze(int confl, std::vector<SatLit> &learned,
                 int &backtrack_level);
    void backtrack(int level);
    void bumpVar(SatVar v);
    void decayActivities();
    SatVar pickBranchVar();
    void attachClause(int ci);
    static uint64_t luby(uint64_t i);

    void heapInsert(SatVar v);
    void heapSwap(int i, int j);
    void heapSiftUp(int i);
    void heapSiftDown(int i);
    SatVar heapPopMax();

    std::vector<std::vector<SatLit>> clauses_;
    std::vector<std::vector<Watcher>> watches_;   ///< per literal
    std::vector<uint8_t> assign_;                 ///< per variable
    std::vector<uint8_t> phase_;       ///< saved phase (1 = false)
    std::vector<int> reason_;          ///< clause forcing the var
    std::vector<int> level_;           ///< decision level of the var
    std::vector<double> activity_;
    std::vector<SatLit> trail_;
    std::vector<int> trailLim_;        ///< trail size per level
    std::vector<SatVar> heap_;         ///< activity max-heap
    std::vector<int> heapPos_;         ///< heap index per var, -1 out
    std::vector<uint8_t> model_;       ///< snapshot of the last Sat
    size_t qhead_ = 0;
    double varInc_ = 1.0;
    bool unsat_ = false;               ///< root-level conflict seen
    std::vector<uint8_t> seen_;        ///< scratch for analyze()
    Stats stats_;
};

} // namespace flexi

#endif // FLEXI_ANALYSIS_SAT_HH
