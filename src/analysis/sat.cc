#include "sat.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexi
{

SatVar
SatSolver::newVar()
{
    SatVar v = numVars();
    assign_.push_back(kUnassigned);
    phase_.push_back(1);   // prefer false first, like MiniSat
    reason_.push_back(kNoReason);
    level_.push_back(0);
    activity_.push_back(0.0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

// ---------------------------------------------------------------
// Activity-ordered decision heap (max-heap keyed by activity_).

void
SatSolver::heapInsert(SatVar v)
{
    if (static_cast<size_t>(v) >= heapPos_.size())
        heapPos_.resize(v + 1, -1);
    if (heapPos_[v] >= 0)
        return;
    heapPos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapSiftUp(heapPos_[v]);
}

void
SatSolver::heapSwap(int i, int j)
{
    std::swap(heap_[i], heap_[j]);
    heapPos_[heap_[i]] = i;
    heapPos_[heap_[j]] = j;
}

void
SatSolver::heapSiftUp(int i)
{
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[heap_[i]])
            break;
        heapSwap(i, parent);
        i = parent;
    }
}

void
SatSolver::heapSiftDown(int i)
{
    int n = static_cast<int>(heap_.size());
    for (;;) {
        int best = i;
        int l = 2 * i + 1;
        int r = 2 * i + 2;
        if (l < n && activity_[heap_[l]] > activity_[heap_[best]])
            best = l;
        if (r < n && activity_[heap_[r]] > activity_[heap_[best]])
            best = r;
        if (best == i)
            return;
        heapSwap(i, best);
        i = best;
    }
}

SatVar
SatSolver::heapPopMax()
{
    while (!heap_.empty()) {
        SatVar v = heap_[0];
        heapPos_[v] = -1;
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) {
            heapPos_[heap_[0]] = 0;
            heapSiftDown(0);
        }
        if (assign_[v] == kUnassigned)
            return v;
    }
    return -1;
}

void
SatSolver::bumpVar(SatVar v)
{
    activity_[v] += varInc_;
    if (activity_[v] > 1e100) {
        for (double &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapPos_[v] >= 0)
        heapSiftUp(heapPos_[v]);
}

void
SatSolver::decayActivities()
{
    varInc_ *= (1.0 / 0.95);
}

// ---------------------------------------------------------------

void
SatSolver::attachClause(int ci)
{
    const auto &cl = clauses_[ci];
    watches_[cl[0].code].push_back({ci, cl[1]});
    watches_[cl[1].code].push_back({ci, cl[0]});
}

bool
SatSolver::addClause(std::vector<SatLit> lits)
{
    if (unsat_)
        return false;
    backtrack(0);

    std::sort(lits.begin(), lits.end(),
              [](SatLit a, SatLit b) { return a.code < b.code; });
    std::vector<SatLit> cl;
    for (SatLit l : lits) {
        if (l.var() < 0 || l.var() >= numVars())
            panic("addClause: literal over unknown variable");
        if (!cl.empty() && cl.back() == l)
            continue;   // duplicate
        if (!cl.empty() && cl.back() == ~l)
            return true;   // tautology: l or ~l
        if (litTrue(l))
            return true;   // satisfied at root
        if (litFalse(l))
            continue;      // falsified at root: drop literal
        cl.push_back(l);
    }

    if (cl.empty()) {
        unsat_ = true;
        return false;
    }
    if (cl.size() == 1) {
        enqueue(cl[0], kNoReason);
        if (propagate() != kNoReason) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    clauses_.push_back(std::move(cl));
    attachClause(static_cast<int>(clauses_.size()) - 1);
    return true;
}

void
SatSolver::enqueue(SatLit l, int reason)
{
    SatVar v = l.var();
    assign_[v] = l.negated() ? kFalse : kTrue;
    reason_[v] = reason;
    level_[v] = static_cast<int>(trailLim_.size());
    trail_.push_back(l);
    ++stats_.propagations;
}

int
SatSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        SatLit p = trail_[qhead_++];
        SatLit np = ~p;   // now false
        auto &ws = watches_[np.code];
        size_t i = 0;
        size_t j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i++];
            if (litTrue(w.blocker)) {
                ws[j++] = w;
                continue;
            }
            auto &cl = clauses_[w.clause];
            // Normalize: the false literal sits at cl[1].
            if (cl[0] == np)
                std::swap(cl[0], cl[1]);
            if (litTrue(cl[0])) {
                ws[j++] = {w.clause, cl[0]};
                continue;
            }
            // Look for a replacement watch.
            bool moved = false;
            for (size_t k = 2; k < cl.size(); ++k) {
                if (!litFalse(cl[k])) {
                    std::swap(cl[1], cl[k]);
                    watches_[cl[1].code].push_back(
                        {w.clause, cl[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflicting.
            ws[j++] = {w.clause, cl[0]};
            if (litFalse(cl[0])) {
                // Conflict: keep remaining watchers, flush queue.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(cl[0], w.clause);
        }
        ws.resize(j);
    }
    return kNoReason;
}

void
SatSolver::analyze(int confl, std::vector<SatLit> &learned,
                   int &backtrack_level)
{
    learned.clear();
    learned.push_back(SatLit{});   // slot for the asserting 1UIP lit

    int path = 0;
    SatLit p;
    bool have_p = false;
    size_t index = trail_.size();
    int current = static_cast<int>(trailLim_.size());
    int c = confl;

    do {
        const auto &cl = clauses_[c];
        for (size_t k = have_p ? 1 : 0; k < cl.size(); ++k) {
            SatLit q = cl[k];
            SatVar v = q.var();
            if (seen_[v] || level_[v] == 0)
                continue;
            seen_[v] = 1;
            bumpVar(v);
            if (level_[v] >= current)
                ++path;
            else
                learned.push_back(q);
        }
        // Walk the trail back to the next marked literal.
        do {
            --index;
        } while (!seen_[trail_[index].var()]);
        p = trail_[index];
        have_p = true;
        c = reason_[p.var()];
        seen_[p.var()] = 0;
        --path;
    } while (path > 0);
    learned[0] = ~p;

    if (learned.size() == 1) {
        backtrack_level = 0;
    } else {
        // Second-highest decision level in the clause becomes the
        // backjump target; keep a literal of that level at slot 1
        // so it stays watched.
        size_t best = 1;
        for (size_t k = 2; k < learned.size(); ++k)
            if (level_[learned[k].var()] >
                level_[learned[best].var()])
                best = k;
        std::swap(learned[1], learned[best]);
        backtrack_level = level_[learned[1].var()];
    }
    for (size_t k = 1; k < learned.size(); ++k)
        seen_[learned[k].var()] = 0;
}

void
SatSolver::backtrack(int level)
{
    if (static_cast<int>(trailLim_.size()) <= level)
        return;
    size_t keep = trailLim_[level];
    for (size_t k = trail_.size(); k > keep; --k) {
        SatVar v = trail_[k - 1].var();
        phase_[v] = assign_[v];
        assign_[v] = kUnassigned;
        reason_[v] = kNoReason;
        heapInsert(v);
    }
    trail_.resize(keep);
    trailLim_.resize(level);
    qhead_ = trail_.size();
}

SatVar
SatSolver::pickBranchVar()
{
    return heapPopMax();
}

uint64_t
SatSolver::luby(uint64_t i)
{
    // The reluctant-doubling sequence 1 1 2 1 1 2 4 ...
    uint64_t k = 1;
    while ((1ull << (k + 1)) - 1 <= i + 1)
        ++k;
    while ((1ull << k) - 1 != i + 1) {
        i -= (1ull << k) - 1;
        k = 1;
        while ((1ull << (k + 1)) - 1 <= i + 1)
            ++k;
    }
    return 1ull << (k - 1);
}

SatSolver::Result
SatSolver::solve(const std::vector<SatLit> &assumptions)
{
    if (unsat_)
        return Result::Unsat;
    backtrack(0);
    if (propagate() != kNoReason) {
        unsat_ = true;
        return Result::Unsat;
    }

    std::vector<SatLit> learned;
    uint64_t budget = 100 * luby(stats_.restarts);

    for (;;) {
        int confl = propagate();
        if (confl != kNoReason) {
            ++stats_.conflicts;
            if (trailLim_.empty()) {
                unsat_ = true;
                return Result::Unsat;
            }
            int bt = 0;
            analyze(confl, learned, bt);
            backtrack(bt);
            if (learned.size() == 1) {
                enqueue(learned[0], kNoReason);
            } else {
                clauses_.push_back(learned);
                int ci = static_cast<int>(clauses_.size()) - 1;
                attachClause(ci);
                enqueue(learned[0], ci);
            }
            decayActivities();
            if (budget > 0)
                --budget;
            continue;
        }

        if (budget == 0 && !trailLim_.empty()) {
            ++stats_.restarts;
            budget = 100 * luby(stats_.restarts);
            backtrack(0);
            continue;
        }

        // Place pending assumptions as pseudo-decisions, then make a
        // real decision.
        SatLit next;
        bool have_next = false;
        while (trailLim_.size() < assumptions.size()) {
            SatLit a = assumptions[trailLim_.size()];
            if (litTrue(a)) {
                trailLim_.push_back(trail_.size());
            } else if (litFalse(a)) {
                return Result::Unsat;
            } else {
                next = a;
                have_next = true;
                break;
            }
        }
        if (!have_next) {
            SatVar v = pickBranchVar();
            if (v < 0) {
                model_.assign(assign_.begin(), assign_.end());
                return Result::Sat;
            }
            ++stats_.decisions;
            next = SatLit::make(v, phase_[v] != kTrue);
            have_next = true;
        }
        trailLim_.push_back(trail_.size());
        enqueue(next, kNoReason);
    }
}

bool
SatSolver::modelValue(SatVar v) const
{
    if (v < 0 || static_cast<size_t>(v) >= model_.size())
        panic("modelValue: no model for variable %d", v);
    return model_[v] == kTrue;
}

} // namespace flexi
