/**
 * @file
 * Behavioral next-state specifications of the four cores, as CNF
 * circuits.
 *
 * buildIsaSpec() constructs, over a CnfBuilder, the architectural
 * next-state function of one ISA: given literals for the instruction
 * bus, the input port, and every named state bit (accumulator, PC,
 * memory words, carry, return register, flags, the FC8 LOAD BYTE
 * flag), it returns one literal per state bit describing its value
 * after the clock edge. The construction follows the ISA semantics
 * of src/sim/core_sim.cc (word-level adds, muxes, one-hot decode) —
 * deliberately *not* the gate netlists — so a miter against a
 * netlist's DFF D cones is a real two-sided equivalence check.
 *
 * Each spec also carries its instruction-class table: assumption
 * sets that pin opcode bits (and, for FC8, the LOAD BYTE flag) so
 * the checker can prove the miter one instruction at a time and
 * report which instruction a mismatch belongs to. The final "*"
 * class pins nothing and proves the whole input space at once.
 */

#ifndef FLEXI_ANALYSIS_ISA_SPEC_HH
#define FLEXI_ANALYSIS_ISA_SPEC_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cnf_encoder.hh"
#include "isa/isa.hh"

namespace flexi
{

/** One instruction class: assumption bits pinned during its solve. */
struct InstrClass
{
    std::string name;
    /** (instruction bit index, pinned value). */
    std::vector<std::pair<unsigned, bool>> instrBits;
    /** (state net label, pinned value) — e.g. {"ldb_flag", false}. */
    std::vector<std::pair<std::string, bool>> stateBits;
};

/** What the spec circuit reads. */
struct IsaSpecInputs
{
    CnfBuilder::Word instr;   ///< LSB first
    CnfBuilder::Word iport;
    /** Current-state literal per state net label. */
    std::map<std::string, SatLit> state;
};

/** The spec circuit: next-state literal per state net label. */
struct IsaSpec
{
    std::map<std::string, SatLit> nextState;
    std::vector<InstrClass> classes;
};

/** Instruction bus width of a core's netlist (8 or 16). */
unsigned isaInstrWidth(IsaKind kind);

IsaSpec buildIsaSpec(CnfBuilder &cnf, IsaKind kind,
                     const IsaSpecInputs &in);

} // namespace flexi

#endif // FLEXI_ANALYSIS_ISA_SPEC_HH
