#include "equiv.hh"

#include <algorithm>
#include <cctype>

#include "analysis/cnf_encoder.hh"
#include "analysis/isa_spec.hh"
#include "common/logging.hh"

namespace flexi
{

namespace
{

using Result = SatSolver::Result;

/** Full input + state assignment from the last Sat model. */
EquivCounterexample
extractCex(const SatSolver &solver, const Netlist &nl,
           const NetlistEncoding &enc)
{
    EquivCounterexample cex;
    for (const auto &[name, net] : nl.primaryInputs())
        if (enc.hasLit(net))
            cex.assignment.emplace_back(
                name, solver.modelValue(enc.lit(net)));
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i)
        cex.assignment.emplace_back(nl.netName(dffs[i].q),
                                    solver.modelValue(enc.dffQ[i]));
    return cex;
}

/**
 * Incremental SAT sweeping: prove two literals equal with two
 * assumption solves, then harden the equality into the CNF so later
 * proofs get it for free.
 */
bool
proveEqual(CnfBuilder &cnf, SatLit a, SatLit b, uint64_t &solves)
{
    if (a == b)
        return true;
    SatSolver &solver = cnf.solver();
    ++solves;
    if (solver.solve({a, ~b}) == Result::Sat)
        return false;
    ++solves;
    if (solver.solve({~a, b}) == Result::Sat)
        return false;
    solver.addClause({~a, b});
    solver.addClause({a, ~b});
    return true;
}

} // namespace

std::string
packedAssignmentText(
    const std::vector<std::pair<std::string, bool>> &assignment)
{
    // Pack bit groups that share a name prefix into bus values.
    std::map<std::string, std::map<unsigned, bool>> buses;
    std::vector<std::pair<std::string, bool>> singles;
    for (const auto &[name, v] : assignment) {
        size_t p = name.size();
        while (p > 0 &&
               std::isdigit(static_cast<unsigned char>(name[p - 1])))
            --p;
        if (p == 0 || p == name.size()) {
            singles.emplace_back(name, v);
            continue;
        }
        unsigned idx =
            static_cast<unsigned>(std::stoul(name.substr(p)));
        buses[name.substr(0, p)][idx] = v;
    }

    std::string out;
    auto emit = [&](const std::string &s) {
        if (!out.empty())
            out += " ";
        out += s;
    };
    for (const auto &[prefix, bits] : buses) {
        std::string shown = prefix;
        while (!shown.empty() && shown.back() == '_')
            shown.pop_back();
        // Dense little-endian group starting at bit 0 -> hex value.
        unsigned width = 0;
        uint64_t value = 0;
        bool dense = true;
        for (const auto &[i, v] : bits) {
            if (i >= 64) {
                dense = false;
                break;
            }
            if (v)
                value |= 1ull << i;
            width = std::max(width, i + 1);
        }
        dense = dense && bits.size() == width;
        if (dense && width > 1) {
            emit(strfmt("%s=0x%llx", shown.c_str(),
                        static_cast<unsigned long long>(value)));
        } else {
            for (const auto &[i, v] : bits)
                emit(strfmt("%s%u=%d", prefix.c_str(), i, v ? 1 : 0));
        }
    }
    for (const auto &[name, v] : singles)
        emit(strfmt("%s=%d", name.c_str(), v ? 1 : 0));
    return out;
}

std::string
EquivCounterexample::text() const
{
    std::string out = packedAssignmentText(assignment);
    out += " -> mismatch on ";
    for (size_t i = 0; i < mismatched.size(); ++i)
        out += (i ? ", " : "") + mismatched[i];
    return out;
}

EquivResult
checkPlanEquivalence(const Netlist &nl)
{
    EquivResult res;
    SatSolver solver;
    CnfBuilder cnf(solver);

    NetlistEncodeOptions ref_opts;
    ref_opts.mode = NetlistEncodeMode::Reference;
    ref_opts.applyFaults = true;
    NetlistEncoding ref = encodeNetlist(cnf, nl, ref_opts);

    NetlistEncodeOptions plan_opts;
    plan_opts.mode = NetlistEncodeMode::Plan;
    plan_opts.applyFaults = true;
    plan_opts.share = &ref;
    plan_opts.shareWith = &nl;
    NetlistEncoding plan = encodeNetlist(cnf, nl, plan_opts);

    // Third half of the miter: the fused-run word program the
    // wide-lane compiled backend dispatches, encoded from the WordOp
    // kernel semantics. Sharing the same input/Q variables proves
    // scalar plan AND word dispatch against the reference at once.
    NetlistEncodeOptions word_opts;
    word_opts.mode = NetlistEncodeMode::WordPlan;
    word_opts.applyFaults = true;
    word_opts.share = &ref;
    word_opts.shareWith = &nl;
    NetlistEncoding word = encodeNetlist(cnf, nl, word_opts);

    auto fail = [&](NetId net) {
        res.hasCex = true;
        res.cex = extractCex(solver, nl, ref);
        res.cex.mismatched = {nl.netName(net)};
        res.conflicts = solver.stats().conflicts;
    };

    // Sweep every cell cone in plan execution order: each proof is
    // local once its fanin equalities are hardened.
    for (const auto &step : nl.planSteps()) {
        if (!ref.hasLit(step.out) || !plan.hasLit(step.out) ||
            !word.hasLit(step.out)) {
            res.detail = strfmt("net %s missing from an encoding",
                                nl.netName(step.out).c_str());
            return res;
        }
        if (!proveEqual(cnf, ref.lit(step.out), plan.lit(step.out),
                        res.solves) ||
            !proveEqual(cnf, ref.lit(step.out), word.lit(step.out),
                        res.solves)) {
            fail(step.out);
            return res;
        }
    }

    // Effective captured DFF values (D cone blended with any fault
    // forcing Q, exactly as clockEdge() does).
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i) {
        if (!proveEqual(cnf, ref.dffD[i], plan.dffD[i],
                        res.solves) ||
            !proveEqual(cnf, ref.dffD[i], word.dffD[i],
                        res.solves)) {
            fail(dffs[i].q);
            return res;
        }
    }

    res.proven = true;
    res.conflicts = solver.stats().conflicts;
    return res;
}

EquivResult
checkNetlistEquivalence(const Netlist &a, const Netlist &b)
{
    EquivResult res;

    // The interface must match or the miter is meaningless.
    {
        const auto &ia = a.primaryInputs();
        const auto &ib = b.primaryInputs();
        const auto &oa = a.primaryOutputs();
        const auto &ob = b.primaryOutputs();
        auto same_names = [](const std::map<std::string, NetId> &x,
                             const std::map<std::string, NetId> &y) {
            if (x.size() != y.size())
                return false;
            for (const auto &[name, net] : x)
                if (!y.count(name))
                    return false;
            return true;
        };
        if (!same_names(ia, ib) || !same_names(oa, ob)) {
            res.detail = "primary input/output names differ";
            return res;
        }
        if (a.dffs().size() != b.dffs().size()) {
            res.detail = strfmt("state mismatch: %zu vs %zu DFFs",
                                a.dffs().size(), b.dffs().size());
            return res;
        }
    }

    SatSolver solver;
    CnfBuilder cnf(solver);

    NetlistEncodeOptions ea_opts;
    ea_opts.mode = NetlistEncodeMode::Reference;
    ea_opts.applyFaults = true;
    NetlistEncoding ea = encodeNetlist(cnf, a, ea_opts);

    NetlistEncodeOptions eb_opts;
    eb_opts.mode = NetlistEncodeMode::Reference;
    eb_opts.applyFaults = true;
    eb_opts.share = &ea;
    eb_opts.shareWith = &a;
    NetlistEncoding eb = encodeNetlist(cnf, b, eb_opts);

    // Sweep acceleration when the instances share one structure
    // (clone() dies): prove internal cones equal where possible.
    // Failures here are *not* mismatches — a fault can corrupt an
    // internal cone yet be masked at every output — so they are
    // simply left unhardened for the final miter to sort out.
    if (a.numCells() == b.numCells() && a.numNets() == b.numNets()) {
        for (const auto &step : a.planSteps()) {
            if (!ea.hasLit(step.out) || !eb.hasLit(step.out))
                continue;
            proveEqual(cnf, ea.lit(step.out), eb.lit(step.out),
                       res.solves);
        }
    }

    // The real question: any input/state separating an output or a
    // captured next-state bit?
    std::vector<SatLit> diffs;
    std::vector<std::string> names;
    for (const auto &[name, net_a] : a.primaryOutputs()) {
        NetId net_b = b.primaryOutputs().at(name);
        if (!ea.hasLit(net_a) || !eb.hasLit(net_b)) {
            res.detail = strfmt("output '%s' missing from an encoding",
                                name.c_str());
            return res;
        }
        diffs.push_back(cnf.mkXor(ea.lit(net_a), eb.lit(net_b)));
        names.push_back(name);
    }
    auto dffs = a.dffs();
    for (size_t i = 0; i < dffs.size(); ++i) {
        diffs.push_back(cnf.mkXor(ea.dffD[i], eb.dffD[i]));
        names.push_back(a.netName(dffs[i].q) + "'");
    }

    SatLit any = cnf.mkOrN(diffs);
    ++res.solves;
    if (solver.solve({any}) == Result::Sat) {
        res.hasCex = true;
        res.cex = extractCex(solver, a, ea);
        for (size_t i = 0; i < diffs.size(); ++i)
            if (solver.modelValue(diffs[i]))
                res.cex.mismatched.push_back(names[i]);
    } else {
        res.proven = true;
    }
    res.conflicts = solver.stats().conflicts;
    return res;
}

IsaEquivResult
checkIsaEquivalence(const Netlist &nl, IsaKind kind)
{
    IsaEquivResult res;
    SatSolver solver;
    CnfBuilder cnf(solver);

    NetlistEncodeOptions opts;
    opts.mode = NetlistEncodeMode::Reference;
    // Injected faults are part of this die's semantics: a defective
    // die must *fail* the ISA proof (with a counterexample naming
    // the corrupted state), not silently pass as its template.
    opts.applyFaults = true;
    NetlistEncoding enc = encodeNetlist(cnf, nl, opts);

    IsaSpecInputs in;
    unsigned iw = isaInstrWidth(kind);
    for (unsigned i = 0; i < iw; ++i) {
        NetId net = nl.findNet("instr" + std::to_string(i));
        if (net == kNoNet || !enc.hasLit(net)) {
            res.detail = strfmt("no instruction input instr%u", i);
            return res;
        }
        in.instr.push_back(enc.lit(net));
    }
    unsigned dw = isaDataWidth(kind);
    for (unsigned i = 0; i < dw; ++i) {
        NetId net = nl.findNet("iport" + std::to_string(i));
        if (net == kNoNet || !enc.hasLit(net)) {
            res.detail = strfmt("no input port bit iport%u", i);
            return res;
        }
        in.iport.push_back(enc.lit(net));
    }

    // Architectural state correspondence: every DFF must carry a
    // stable net label (the builders name their state; an unlabeled
    // DFF means the spec cannot account for it).
    auto dffs = nl.dffs();
    std::vector<std::string> labels(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i) {
        std::string label = nl.netName(dffs[i].q);
        if (nl.findNet(label) != dffs[i].q) {
            res.detail = strfmt(
                "DFF #%zu (net %s) has no stable state label", i,
                label.c_str());
            return res;
        }
        labels[i] = label;
        in.state[label] = enc.dffQ[i];
    }

    IsaSpec spec = buildIsaSpec(cnf, kind, in);

    for (const auto &[name, lit] : spec.nextState) {
        if (!in.state.count(name)) {
            res.detail =
                "spec state '" + name + "' has no matching DFF label";
            return res;
        }
    }
    for (const auto &[name, lit] : in.state) {
        if (!spec.nextState.count(name)) {
            res.detail =
                "DFF label '" + name + "' not covered by the ISA spec";
            return res;
        }
    }

    // One XOR diff per state bit; the miter output asks whether any
    // of them can go high.
    std::vector<SatLit> diffs(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i)
        diffs[i] =
            cnf.mkXor(enc.dffD[i], spec.nextState.at(labels[i]));
    SatLit any = cnf.mkOrN(diffs);

    res.proven = true;
    for (const InstrClass &cls : spec.classes) {
        std::vector<SatLit> assumptions;
        for (const auto &[bit, v] : cls.instrBits)
            assumptions.push_back(v ? in.instr[bit]
                                    : ~in.instr[bit]);
        for (const auto &[name, v] : cls.stateBits) {
            SatLit s = in.state.at(name);
            assumptions.push_back(v ? s : ~s);
        }
        assumptions.push_back(any);

        ++res.solves;
        IsaClassCheck chk;
        chk.name = cls.name;
        chk.proven = solver.solve(assumptions) == Result::Unsat;
        if (!chk.proven) {
            res.proven = false;
            chk.cex = extractCex(solver, nl, enc);
            for (size_t i = 0; i < dffs.size(); ++i)
                if (solver.modelValue(diffs[i]))
                    chk.cex.mismatched.push_back(labels[i]);
        }
        res.classes.push_back(std::move(chk));
    }
    res.conflicts = solver.stats().conflicts;
    return res;
}

LintReport
equivLint(const Netlist &nl, IsaKind kind)
{
    LintReport rep;

    EquivResult plan = checkPlanEquivalence(nl);
    if (plan.proven) {
        rep.add({Severity::Note, "equiv-proven", "plan", {}, -1, -1,
                 strfmt("compiled plan + word dispatch == reference "
                        "semantics (%llu solves, %llu conflicts)",
                        static_cast<unsigned long long>(plan.solves),
                        static_cast<unsigned long long>(
                            plan.conflicts))});
    } else {
        rep.add({Severity::Error, "equiv-mismatch", "plan", {}, -1,
                 -1,
                 "compiled plan diverges from reference semantics: " +
                     (plan.hasCex ? plan.cex.text() : plan.detail)});
    }

    IsaEquivResult isa = checkIsaEquivalence(nl, kind);
    if (!isa.detail.empty()) {
        rep.add({Severity::Error, "equiv-mismatch", "isa", {}, -1, -1,
                 "ISA equivalence setup failed: " + isa.detail});
        return rep;
    }
    for (const IsaClassCheck &chk : isa.classes) {
        if (chk.proven)
            continue;
        rep.add({Severity::Error, "equiv-mismatch", "isa", {}, -1, -1,
                 "instruction class '" + chk.name +
                     "': netlist != ISA spec: " + chk.cex.text()});
    }
    if (isa.proven) {
        rep.add({Severity::Note, "equiv-proven", "isa", {}, -1, -1,
                 strfmt("netlist == ISA behavioral spec across %zu "
                        "instruction classes (%llu solves, %llu "
                        "conflicts)",
                        isa.classes.size(),
                        static_cast<unsigned long long>(isa.solves),
                        static_cast<unsigned long long>(
                            isa.conflicts))});
    }
    return rep;
}

} // namespace flexi
