#include "cnf_encoder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexi
{

SatLit
CnfBuilder::fresh()
{
    return SatLit::make(solver_.newVar());
}

SatLit
CnfBuilder::constTrue()
{
    if (!haveConst_) {
        const_ = fresh();
        solver_.addClause({const_});
        haveConst_ = true;
    }
    return const_;
}

bool
CnfBuilder::isConstTrue(SatLit l)
{
    return haveConst_ && l == const_;
}

bool
CnfBuilder::isConstFalse(SatLit l)
{
    return haveConst_ && l == ~const_;
}

void
CnfBuilder::addClause(std::vector<SatLit> lits)
{
    solver_.addClause(std::move(lits));
}

SatLit
CnfBuilder::mkAnd(SatLit a, SatLit b)
{
    if (isConstFalse(a) || isConstFalse(b))
        return constFalse();
    if (isConstTrue(a))
        return b;
    if (isConstTrue(b))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return constFalse();
    SatLit o = fresh();
    addClause({~o, a});
    addClause({~o, b});
    addClause({o, ~a, ~b});
    return o;
}

SatLit
CnfBuilder::mkOr(SatLit a, SatLit b)
{
    return ~mkAnd(~a, ~b);
}

SatLit
CnfBuilder::mkXor(SatLit a, SatLit b)
{
    if (isConstFalse(a))
        return b;
    if (isConstFalse(b))
        return a;
    if (isConstTrue(a))
        return ~b;
    if (isConstTrue(b))
        return ~a;
    if (a == b)
        return constFalse();
    if (a == ~b)
        return constTrue();
    SatLit o = fresh();
    addClause({~o, a, b});
    addClause({~o, ~a, ~b});
    addClause({o, ~a, b});
    addClause({o, a, ~b});
    return o;
}

SatLit
CnfBuilder::mkMux(SatLit a, SatLit b, SatLit sel)
{
    if (isConstFalse(sel))
        return a;
    if (isConstTrue(sel))
        return b;
    if (a == b)
        return a;
    SatLit o = fresh();
    addClause({sel, ~o, a});
    addClause({sel, o, ~a});
    addClause({~sel, ~o, b});
    addClause({~sel, o, ~b});
    return o;
}

SatLit
CnfBuilder::mkAndN(const std::vector<SatLit> &lits)
{
    std::vector<SatLit> ins;
    for (SatLit l : lits) {
        if (isConstFalse(l))
            return constFalse();
        if (isConstTrue(l))
            continue;
        ins.push_back(l);
    }
    if (ins.empty())
        return constTrue();
    if (ins.size() == 1)
        return ins[0];
    SatLit o = fresh();
    std::vector<SatLit> big{o};
    for (SatLit l : ins) {
        addClause({~o, l});
        big.push_back(~l);
    }
    addClause(std::move(big));
    return o;
}

SatLit
CnfBuilder::mkOrN(const std::vector<SatLit> &lits)
{
    std::vector<SatLit> inv;
    inv.reserve(lits.size());
    for (SatLit l : lits)
        inv.push_back(~l);
    return ~mkAndN(inv);
}

CnfBuilder::Word
CnfBuilder::freshWord(unsigned width)
{
    Word w(width);
    for (auto &l : w)
        l = fresh();
    return w;
}

CnfBuilder::Word
CnfBuilder::constWord(uint64_t value, unsigned width)
{
    Word w(width);
    for (unsigned i = 0; i < width; ++i)
        w[i] = constant((value >> i) & 1u);
    return w;
}

CnfBuilder::Word
CnfBuilder::add(const Word &a, const Word &b, SatLit cin,
                SatLit *cout)
{
    if (a.size() != b.size())
        panic("CnfBuilder::add: width mismatch");
    Word sum(a.size());
    SatLit carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        SatLit axb = mkXor(a[i], b[i]);
        sum[i] = mkXor(axb, carry);
        carry = mkOr(mkAnd(a[i], b[i]), mkAnd(axb, carry));
    }
    if (cout)
        *cout = carry;
    return sum;
}

CnfBuilder::Word
CnfBuilder::mux(const Word &a, const Word &b, SatLit sel)
{
    if (a.size() != b.size())
        panic("CnfBuilder::mux: width mismatch");
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = mkMux(a[i], b[i], sel);
    return out;
}

CnfBuilder::Word
CnfBuilder::invert(const Word &a)
{
    Word out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = ~a[i];
    return out;
}

SatLit
CnfBuilder::equalsConst(const Word &w, uint64_t value)
{
    std::vector<SatLit> bits;
    bits.reserve(w.size());
    for (size_t i = 0; i < w.size(); ++i)
        bits.push_back(((value >> i) & 1u) ? w[i] : ~w[i]);
    return mkAndN(bits);
}

SatLit
CnfBuilder::orReduce(const Word &w)
{
    return mkOrN(w);
}

SatLit
CnfBuilder::lessThanConst(const Word &w, uint64_t value)
{
    if (value == 0)
        return constFalse();
    if (w.empty() || value >= (uint64_t{1} << w.size()))
        return constTrue();
    // MSB-down: strictly less as soon as a 1-bit of the constant
    // meets a 0-bit of the word with an equal prefix above it.
    SatLit lt = constFalse();
    SatLit eq = constTrue();
    for (size_t i = w.size(); i-- > 0;) {
        bool vbit = (value >> i) & 1u;
        if (vbit)
            lt = mkOr(lt, mkAnd(eq, ~w[i]));
        eq = mkAnd(eq, vbit ? w[i] : ~w[i]);
    }
    return lt;
}

SatLit
CnfBuilder::equalWords(const Word &a, const Word &b)
{
    if (a.size() != b.size())
        panic("CnfBuilder::equalWords: width mismatch");
    std::vector<SatLit> bits;
    bits.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        bits.push_back(mkXnor(a[i], b[i]));
    return mkAndN(bits);
}

void
CnfBuilder::bindEqual(SatLit a, SatLit b)
{
    if (a == b)
        return;
    addClause({~a, b});
    addClause({a, ~b});
}

uint64_t
CnfBuilder::modelWord(const Word &w) const
{
    uint64_t v = 0;
    for (size_t i = 0; i < w.size(); ++i)
        if (solver_.modelValue(w[i]))
            v |= 1ull << i;
    return v;
}

namespace
{

/**
 * Clauses for one standard cell from its gate semantics. This is the
 * Reference half of the checker: derived from the cell library's
 * boolean functions, not from the compiled truth tables.
 */
void
addGateClauses(CnfBuilder &cnf, CellType type, SatLit o, SatLit a,
               SatLit b, SatLit c)
{
    switch (type) {
      case CellType::INV_X1:
      case CellType::INV_X2:
        cnf.addClause({~o, ~a});
        cnf.addClause({o, a});
        break;
      case CellType::BUF_X1:
      case CellType::BUF_X2:
        cnf.addClause({~o, a});
        cnf.addClause({o, ~a});
        break;
      case CellType::NAND2:
        cnf.addClause({o, a});
        cnf.addClause({o, b});
        cnf.addClause({~o, ~a, ~b});
        break;
      case CellType::NAND3:
        cnf.addClause({o, a});
        cnf.addClause({o, b});
        cnf.addClause({o, c});
        cnf.addClause({~o, ~a, ~b, ~c});
        break;
      case CellType::NOR2:
        cnf.addClause({~o, ~a});
        cnf.addClause({~o, ~b});
        cnf.addClause({o, a, b});
        break;
      case CellType::NOR3:
        cnf.addClause({~o, ~a});
        cnf.addClause({~o, ~b});
        cnf.addClause({~o, ~c});
        cnf.addClause({o, a, b, c});
        break;
      case CellType::XOR2:
        cnf.addClause({~o, a, b});
        cnf.addClause({~o, ~a, ~b});
        cnf.addClause({o, ~a, b});
        cnf.addClause({o, a, ~b});
        break;
      case CellType::XNOR2:
        cnf.addClause({o, a, b});
        cnf.addClause({o, ~a, ~b});
        cnf.addClause({~o, ~a, b});
        cnf.addClause({~o, a, ~b});
        break;
      case CellType::MUX2:
        // inputs {a, b, sel=c}: o = sel ? b : a
        cnf.addClause({c, ~o, a});
        cnf.addClause({c, o, ~a});
        cnf.addClause({~c, ~o, b});
        cnf.addClause({~c, o, ~b});
        break;
      default:
        panic("addGateClauses: unexpected cell type");
    }
}

} // namespace

NetlistEncoding
encodeNetlist(CnfBuilder &cnf, const Netlist &nl,
              const NetlistEncodeOptions &opts)
{
    if (!nl.elaborated())
        panic("encodeNetlist: netlist '%s' not elaborated",
              nl.name().c_str());

    NetlistEncoding enc;
    // One slot per net plus the plan's scratch net (always 0).
    enc.net.assign(nl.numNets() + 1, SatLit{});
    enc.net[nl.zero()] = cnf.constFalse();
    enc.net[nl.one()] = cnf.constTrue();
    enc.net[nl.scratchNet()] = cnf.constFalse();

    auto getLit = [&](NetId n) {
        if (enc.net[n].code < 0)
            enc.net[n] = cnf.fresh();
        return enc.net[n];
    };

    // Primary inputs: shared with a previous encoding (by name) or
    // fresh.
    for (const auto &[name, net] : nl.primaryInputs()) {
        if (opts.share) {
            auto it = opts.shareWith->primaryInputs().find(name);
            if (it == opts.shareWith->primaryInputs().end())
                panic("encodeNetlist: '%s' lacks shared input '%s'",
                      opts.shareWith->name().c_str(), name.c_str());
            enc.net[net] = opts.share->lit(it->second);
        } else {
            enc.net[net] = cnf.fresh();
        }
    }

    // DFF state: Q nets are free variables of the combinational
    // problem, shared across a miter by DFF commit order.
    auto dffs = nl.dffs();
    if (opts.share && opts.share->dffQ.size() != dffs.size())
        panic("encodeNetlist: DFF count mismatch (%zu vs %zu)",
              opts.share->dffQ.size(), dffs.size());
    if (opts.bindQ && opts.bindQ->size() != dffs.size())
        panic("encodeNetlist: bindQ count mismatch (%zu vs %zu)",
              opts.bindQ->size(), dffs.size());
    enc.dffQ.resize(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i) {
        if (opts.share)
            enc.net[dffs[i].q] = opts.share->dffQ[i];
        else if (opts.bindQ)
            enc.net[dffs[i].q] = (*opts.bindQ)[i];
        else
            enc.net[dffs[i].q] = getLit(dffs[i].q);
        enc.dffQ[i] = enc.net[dffs[i].q];
    }

    // Stuck-at faults force a net to a constant for every consumer;
    // the faulted net's driver cone is left unconstrained, exactly
    // like the force-mask blend in the evaluators.
    std::vector<uint8_t> faulted(nl.numNets() + 1, 0);
    if (opts.applyFaults) {
        for (const StuckFault &f : nl.faults()) {
            enc.net[f.net] = cnf.constant(f.value);
            faulted[f.net] = 1;
        }
    }

    if (opts.mode == NetlistEncodeMode::Reference) {
        // Gate semantics straight from the CellInst records, in
        // construction order (creation order is causal for every
        // builder; forward references would get a free literal that
        // the later driver then constrains via getLit).
        const auto &cells = nl.cells();
        for (const auto &cell : cells) {
            if (isSequential(cell.type))
                continue;
            if (faulted[cell.output]) {
                continue;   // forced: drop the driving cone
            }
            SatLit a = getLit(cell.inputs[0]);
            SatLit b = cell.inputs.size() > 1 ? getLit(cell.inputs[1])
                                              : SatLit{};
            SatLit c = cell.inputs.size() > 2 ? getLit(cell.inputs[2])
                                              : SatLit{};
            addGateClauses(cnf, cell.type, getLit(cell.output), a, b,
                           c);
        }
    } else if (opts.mode == NetlistEncodeMode::Plan) {
        // The compiled plan: one 8-bit truth table per step, padded
        // input slots reading the scratch net.
        for (const auto &step : nl.planSteps()) {
            if (faulted[step.out])
                continue;
            SatLit in[3] = {getLit(step.in[0]), getLit(step.in[1]),
                            getLit(step.in[2])};
            SatLit out = getLit(step.out);
            for (unsigned idx = 0; idx < 8; ++idx) {
                bool v = (step.lut >> idx) & 1;
                std::vector<SatLit> clause;
                for (unsigned k = 0; k < 3; ++k)
                    clause.push_back((idx >> k) & 1 ? ~in[k]
                                                    : in[k]);
                clause.push_back(v ? out : ~out);
                cnf.addClause(std::move(clause));
            }
        }
    } else {
        // The fused-run word program: walk the exact straight-line
        // program the wide-lane backend dispatches (planRuns()),
        // encoding each step from its WordOp's gate semantics — the
        // kernel bodies, not the truth tables — so the fusion and
        // the per-op word kernels are both inside the proof.
        const auto steps = nl.planSteps();
        for (const auto &run : nl.planRuns()) {
            for (uint32_t s = run.begin; s < run.end; ++s) {
                const auto &step = steps[s];
                if (faulted[step.out])
                    continue;
                SatLit a = getLit(step.in[0]);
                SatLit b = getLit(step.in[1]);
                SatLit c = getLit(step.in[2]);
                SatLit o;
                switch (run.op) {
                  case WordOp::Buf:
                    o = a;
                    break;
                  case WordOp::Inv:
                    o = ~a;
                    break;
                  case WordOp::Nand2:
                    o = cnf.mkNand(a, b);
                    break;
                  case WordOp::Nand3:
                    o = ~cnf.mkAndN({a, b, c});
                    break;
                  case WordOp::Nor2:
                    o = cnf.mkNor(a, b);
                    break;
                  case WordOp::Nor3:
                    o = ~cnf.mkOrN({a, b, c});
                    break;
                  case WordOp::Xor2:
                    o = cnf.mkXor(a, b);
                    break;
                  case WordOp::Xnor2:
                    o = cnf.mkXnor(a, b);
                    break;
                  case WordOp::Mux2:
                    o = cnf.mkMux(a, b, c);
                    break;
                  case WordOp::Lut: {
                    // lutWord(): OR over the set minterms of the
                    // 8-bit table.
                    std::vector<SatLit> terms;
                    for (unsigned idx = 0; idx < 8; ++idx)
                        if ((step.lut >> idx) & 1)
                            terms.push_back(
                                cnf.mkAndN({(idx & 1) ? a : ~a,
                                            (idx & 2) ? b : ~b,
                                            (idx & 4) ? c : ~c}));
                    o = cnf.mkOrN(terms);
                    break;
                  }
                  default:
                    panic("encodeNetlist: unexpected word op");
                }
                if (enc.net[step.out].code < 0) {
                    enc.net[step.out] = o;
                } else {
                    // A pre-existing literal (e.g. a shared Q net
                    // can't be a plan output, but stay defensive):
                    // constrain equality instead of clobbering.
                    SatLit prev = enc.net[step.out];
                    cnf.addClause({~prev, o});
                    cnf.addClause({prev, ~o});
                }
            }
        }
    }

    // Effective captured DFF values: the D cone, unless a fault on
    // the Q net overrides the capture (clockEdge() semantics).
    enc.dffD.resize(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i)
        enc.dffD[i] =
            faulted[dffs[i].q] ? enc.net[dffs[i].q]
                               : getLit(dffs[i].d);
    return enc;
}

} // namespace flexi
