/**
 * @file
 * SAT-guided ATPG triage of the wafer-test vector suite.
 *
 * bench_fault_coverage measures which cell-output stuck-at faults the
 * Section 4.1 directed+random vectors catch; this pass answers the
 * question that number alone can't: are the escapes *test holes* (a
 * better vector would catch them) or *redundant faults* (no input or
 * state assignment can ever expose them)?
 *
 * For every fault the simulation missed, the PR-3 CNF encoder builds
 * a miter between the golden netlist and the faulted clone. An UNSAT
 * result is a proof of redundancy — the fault cannot change any
 * primary output or next-state bit in any cycle, so no test program
 * can see it and it should be excluded from the coverage
 * denominator. A SAT result is a generated test pattern: the exact
 * input/state assignment that distinguishes the dies, i.e. the ATPG
 * vector a smarter test program would apply.
 */

#ifndef FLEXI_ANALYSIS_ATPG_HH
#define FLEXI_ANALYSIS_ATPG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** Verdict for one stuck-at fault. */
struct AtpgFault
{
    StuckFault fault;
    std::string net;       ///< netName() of the faulted net
    std::string module;    ///< module of the driving cell
    bool simDetected = false;
    /** Valid for sim escapes: SAT found a distinguishing pattern. */
    bool testable = false;
    /** Proven unobservable in any single cycle (UNSAT miter). */
    bool redundant = false;
    /** Rendered ATPG pattern for testable escapes. */
    std::string pattern;
};

/** Configuration of one ATPG run. */
struct AtpgConfig
{
    IsaKind isa = IsaKind::FlexiCore4;   ///< fabricated cores only
    /** Lockstep budget per fault simulation (instructions). */
    uint64_t simCycles = 1500;
    /**
     * Cap on faults examined, sampled evenly across the cell list
     * (0 = every cell-output stuck-at fault, both polarities).
     */
    size_t maxFaults = 0;
    unsigned threads = 0;
};

/** Aggregate ATPG report. */
struct AtpgReport
{
    size_t faults = 0;
    size_t simDetected = 0;
    size_t testable = 0;    ///< escapes with a generated ATPG vector
    size_t redundant = 0;   ///< escapes proven untestable
    uint64_t solves = 0;
    uint64_t conflicts = 0;
    /** Detail rows for every simulation escape. */
    std::vector<AtpgFault> escapes;

    /** Raw coverage: simDetected / faults. */
    double simCoverage() const;
    /** Coverage over testable faults: simDetected / (faults -
     *  redundant) — the honest figure of merit for the suite. */
    double testableCoverage() const;
};

/**
 * Run fault simulation of @p prog / @p inputs (typically the
 * makeTestProgram() vector suite) over the configured fault list,
 * then SAT-triage every escape.
 */
AtpgReport runAtpg(const AtpgConfig &config, const Program &prog,
                   const std::vector<uint8_t> &inputs);

} // namespace flexi

#endif // FLEXI_ANALYSIS_ATPG_HH
