#include "timing.hh"

#include <algorithm>

#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

/** One timed (or floating) endpoint candidate before ranking. */
struct Endpoint
{
    EndpointKind kind;
    double arrival;       ///< total path delay in units
    NetId net;            ///< the last combinational net of the path
    std::string endName;
    std::string module;
    double captureDelay;  ///< DFF capture contribution, 0 otherwise
    NetId captureNet;     ///< the DFF Q net, kNoNet otherwise
};

} // namespace

const char *
endpointKindName(EndpointKind kind)
{
    switch (kind) {
      case EndpointKind::DffSetup: return "dff-setup";
      case EndpointKind::PrimaryOutput: return "primary-output";
      case EndpointKind::Floating: return "floating";
    }
    panic("endpointKindName: bad EndpointKind");
}

std::string
TimingPath::text() const
{
    std::string out = startName;
    for (const TimingStep &s : steps)
        out += " -> " + s.name;
    out += strfmt(" (%.2f units via %zu cells, %s endpoint)",
                  delayUnits, steps.size(),
                  endpointKindName(endpoint));
    return out;
}

TimingReport
analyzeTiming(const Netlist &nl, unsigned top_k)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    // Longest-arrival DP in plan (topological) order — the same
    // traversal and arithmetic as criticalPathDelayUnits(), plus a
    // predecessor per net for path reconstruction.
    std::vector<double> arrival(num_nets, 0.0);
    std::vector<int64_t> driver(num_nets, -1);
    std::vector<NetId> pred(num_nets, kNoNet);
    for (const auto &step : nl.planSteps()) {
        const CellInst &cell = cells[step.cell];
        double in_max = 0.0;
        NetId in_pred = kNoNet;
        for (NetId in : cell.inputs) {
            if (in == kNoNet)
                continue;
            if (in_pred == kNoNet || arrival[in] > in_max)
                in_pred = in;
            in_max = std::max(in_max, arrival[in]);
        }
        double t = in_max + cellInfo(cell.type).delayUnits;
        arrival[step.out] = t;
        driver[step.out] = static_cast<int64_t>(step.cell);
        pred[step.out] = in_pred;
    }

    // Which nets anything consumes (a DFF consumes only its D).
    std::vector<bool> consumed(num_nets, false);
    for (const CellInst &cell : cells) {
        size_t real = isSequential(cell.type) ? 1 : cell.inputs.size();
        for (size_t k = 0; k < real && k < cell.inputs.size(); ++k)
            if (cell.inputs[k] != kNoNet)
                consumed[cell.inputs[k]] = true;
    }
    for (const auto &[name, net] : nl.primaryOutputs())
        if (net < num_nets)
            consumed[net] = true;

    std::vector<Endpoint> ends;
    for (const auto &dff : nl.dffs()) {
        const CellInst &cell = cells[dff.cell];
        ends.push_back({EndpointKind::DffSetup,
                        arrival[dff.d] +
                            cellInfo(cell.type).delayUnits,
                        dff.d, nl.netName(dff.q), cell.module,
                        cellInfo(cell.type).delayUnits, dff.q});
    }
    for (const auto &[name, net] : nl.primaryOutputs()) {
        if (net >= num_nets)
            continue;
        std::string module =
            driver[net] >= 0
                ? cells[static_cast<size_t>(driver[net])].module
                : std::string();
        ends.push_back({EndpointKind::PrimaryOutput, arrival[net],
                        net, name, module, 0.0, kNoNet});
    }
    for (const auto &step : nl.planSteps()) {
        if (consumed[step.out])
            continue;
        ends.push_back({EndpointKind::Floating, arrival[step.out],
                        step.out, nl.netName(step.out),
                        cells[step.cell].module, 0.0, kNoNet});
    }

    std::stable_sort(ends.begin(), ends.end(),
                     [](const Endpoint &a, const Endpoint &b) {
                         if (a.arrival != b.arrival)
                             return a.arrival > b.arrival;
                         return a.endName < b.endName;
                     });
    if (ends.size() > top_k)
        ends.resize(top_k);

    TimingReport report;
    report.netlist = nl.name();
    for (const Endpoint &end : ends) {
        TimingPath path;
        path.delayUnits = end.arrival;
        path.endpoint = end.kind;
        path.endName = end.endName;

        // Walk the worst-arrival predecessors back to a source.
        std::vector<TimingStep> rev;
        NetId cur = end.net;
        path.startName = nl.netName(cur);
        while (cur != kNoNet && cur < num_nets && driver[cur] >= 0) {
            auto ci = static_cast<size_t>(driver[cur]);
            rev.push_back({cur, nl.netName(cur), cells[ci].module,
                           cellInfo(cells[ci].type).delayUnits,
                           arrival[cur]});
            NetId next = pred[cur];
            if (next == kNoNet) {
                path.startName = rev.back().name;
                cur = kNoNet;
                break;
            }
            cur = next;
        }
        if (cur != kNoNet)
            path.startName = nl.netName(cur);
        std::reverse(rev.begin(), rev.end());
        path.steps = std::move(rev);
        if (end.kind == EndpointKind::DffSetup)
            path.steps.push_back({end.captureNet,
                                  nl.netName(end.captureNet),
                                  end.module, end.captureDelay,
                                  end.arrival});
        report.paths.push_back(std::move(path));
    }
    return report;
}

LintReport
timingLint(const Netlist &nl, const Technology &tech, double vdd,
           unsigned top_k, double clock_hz)
{
    LintReport rep;
    TimingReport tr = analyzeTiming(nl, top_k);
    double period = 1.0 / clock_hz;
    double tau = tech.unitDelay(vdd);

    for (const TimingPath &path : tr.paths) {
        std::vector<NetId> nets;
        for (const TimingStep &s : path.steps)
            nets.push_back(s.net);
        std::string module =
            path.steps.empty() ? std::string()
                               : path.steps.back().module;

        if (path.endpoint == EndpointKind::Floating) {
            rep.add({Severity::Warning, "unconstrained-path", module,
                     nets, -1, -1,
                     strfmt("sinkless cone '%s' (%.2f units) has no "
                            "timed endpoint; no clock constraint "
                            "checks it",
                            path.endName.c_str(), path.delayUnits)});
            continue;
        }

        double delay_s = path.delayUnits * tau;
        double slack_s = period - delay_s;
        std::string msg = strfmt(
            "%s -> %s: %.2f units x %.3f us = %.1f us at %.2f V; "
            "slack %+.1f us against the %.1f us clock period",
            path.startName.c_str(), path.endName.c_str(),
            path.delayUnits, tau * 1e6, delay_s * 1e6, vdd,
            slack_s * 1e6, period * 1e6);
        if (slack_s < 0.0)
            rep.add({Severity::Error, "timing-violation", module,
                     nets, -1, -1, msg + "; path: " + path.text()});
        else
            rep.add({Severity::Note, "critical-path", module, nets,
                     -1, -1, msg});
    }
    rep.resolveNetNames(nl);
    return rep;
}

} // namespace flexi
