/**
 * @file
 * Transition-relation unrolling for the sequential model checker.
 *
 * An Unrolling is a chain of NetlistEncoding frames over one
 * netlist: frame 0's DFF Q literals are free variables (or pinned to
 * the power-on values), and every later frame is encoded with its Q
 * literals bound to the previous frame's *effective* captured dffD
 * literals — the same clockEdge() semantics the combinational
 * miters already encode, stitched k timesteps deep.
 *
 * The model can optionally be closed over an assembled program: the
 * instr bus of every frame is then constrained to the ROM word at
 * the frame's own PC pads, replicating the lockstep harness's fetch
 * contract exactly (narrow cores fetch one byte at pc every cycle;
 * the wide-bus DSE cores fetch two bytes at pc or pc*2; fetches
 * beyond the image read the idle bus's zeros). Under that closure,
 * program-dependent properties — the watchdog, the MMU page
 * invariant — become well-defined sequential claims about a
 * (netlist, program) pair.
 */

#ifndef FLEXI_ANALYSIS_MC_UNROLL_HH
#define FLEXI_ANALYSIS_MC_UNROLL_HH

#include <string>
#include <vector>

#include "analysis/cnf_encoder.hh"
#include "analysis/dataflow/dataflow.hh"
#include "assembler/program.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** The environment a sequential check runs under. */
struct McModel
{
    /** Pad ties asserted on every frame's inputs. */
    std::vector<PadTie> ties;
    /**
     * Close the system over this program (page 0): each frame's
     * instr bus reads the image at the frame's own PC pads. Null
     * leaves the instruction bus a free input per frame.
     */
    const Program *program = nullptr;
};

class Unrolling
{
  public:
    /**
     * Start an unrolling of @p nl (must stay alive) with no frames.
     * Call addFrame() / ensureFrames() to grow it.
     */
    Unrolling(CnfBuilder &cnf, const Netlist &nl,
              const McModel &model);

    const Netlist &netlist() const { return nl_; }
    unsigned frames() const { return frames_.size(); }

    /** Append one timestep; returns its index. */
    unsigned addFrame();
    void ensureFrames(unsigned n);

    /** Pin frame 0's state to the power-on values (BMC base). */
    void assertInit();

    const NetlistEncoding &frame(unsigned t) const
    {
        return frames_.at(t);
    }
    /** Q of DFF @p i (commit order) at timestep @p t. */
    SatLit stateLit(unsigned t, size_t i) const
    {
        return frames_.at(t).dffQ[i];
    }
    /** Effective captured next-state of DFF @p i at timestep @p t. */
    SatLit nextLit(unsigned t, size_t i) const
    {
        return frames_.at(t).dffD[i];
    }
    SatLit netLit(unsigned t, NetId n) const
    {
        return frames_.at(t).lit(n);
    }
    /** Little-endian literals of a named pad bus at timestep @p t. */
    CnfBuilder::Word busLits(unsigned t,
                             const std::vector<NetId> &nets) const;

    /** PC pad nets (always 7 bits on the FlexiCore family). */
    const std::vector<NetId> &pcNets() const { return pc_nets_; }

    /**
     * Simple-path strengthening: for every pair of frames now
     * present, at least one state bit differs. Incremental — frames
     * added later are constrained against all earlier ones on the
     * next call.
     */
    void assertSimplePath();

  private:
    void closeRom(unsigned t);

    CnfBuilder &cnf_;
    const Netlist &nl_;
    McModel model_;
    std::vector<NetlistEncoding> frames_;
    std::vector<NetId> pc_nets_;
    std::vector<NetId> instr_nets_;
    bool wide_bus_ = false;
    bool word_pc_ = false;
    /** Frames already pairwise-covered by assertSimplePath(). */
    unsigned simplePathDone_ = 0;
};

/**
 * Resolve a named pad bus ("pc", "instr", ...) to its net ids, LSB
 * first, from the input or output name maps. Fatal-free: returns an
 * empty vector when any bit is missing.
 */
std::vector<NetId> resolvePadBus(const Netlist &nl,
                                 const std::string &prefix,
                                 unsigned width, bool input);

} // namespace flexi

#endif // FLEXI_ANALYSIS_MC_UNROLL_HH
