/**
 * @file
 * BMC falsification and k-induction proofs over Unrolling.
 *
 * checkBmc() pins timestep 0 to the power-on state and searches for
 * a property violation within a bounded number of steps; a hit
 * comes back as a replayable multi-cycle McTrace (every input and
 * state bit of every frame, by name). Each clean step is hardened
 * into the CNF so later steps reuse the proof work.
 *
 * checkInduction() proves the property invariant by temporal
 * k-induction: if P held for the last k steps of *any* loop-free
 * path then it holds one step later (UNSAT of the negation), and
 * BMC discharges the base case. Simple-path strengthening (pairwise
 * distinct states across the unrolled window) is what makes the
 * method complete in k for the properties the catalog cares about;
 * docs/FORMAL.md carries the soundness argument.
 *
 * replayMcTrace() / replayMcTraceWide() close the loop with the
 * simulators: the trace is driven cycle by cycle through the scalar
 * netlist and through a LaneGroup lane, checking the state
 * evolution frame by frame and re-evaluating the property
 * concretely at the violation step.
 */

#ifndef FLEXI_ANALYSIS_MC_BMC_HH
#define FLEXI_ANALYSIS_MC_BMC_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/mc/property.hh"
#include "analysis/mc/unroll.hh"

namespace flexi
{

/** One timestep of a counterexample trace. */
struct McFrame
{
    std::vector<std::pair<std::string, bool>> inputs;
    std::vector<std::pair<std::string, bool>> state;
};

/** A multi-cycle counterexample. */
struct McTrace
{
    std::vector<McFrame> frames;
    /** Normalized spec of the violated property. */
    std::string property;
    /** Step at which the property instance fails. */
    unsigned violationStep = 0;

    /** One line per cycle, buses packed to hex. */
    std::string text() const;
    /** Standard VCD rendering (one timestep per #tick). */
    std::string vcd() const;
};

enum class McStatus
{
    Proved,      ///< k-induction closed
    Clean,       ///< BMC found no violation within the bound
    Falsified,   ///< concrete counterexample in `trace`
    Unknown,     ///< induction did not close within maxK
    Invalid,     ///< ill-formed property / model (see detail)
};

struct McResult
{
    McStatus status = McStatus::Invalid;
    std::string detail;
    /** Proved: closing k. Clean: depth checked. Falsified: step. */
    unsigned depth = 0;
    McTrace trace;   ///< valid iff Falsified
    uint64_t solves = 0;
    uint64_t conflicts = 0;
};

/**
 * Search for a violation of @p p within @p depth steps of the
 * power-on state (steps 0..depth inclusive). @p p must be validated
 * against (@p nl, @p model) first.
 */
McResult checkBmc(const Netlist &nl, const McModel &model,
                  const McProperty &p, unsigned depth);

/**
 * Prove G(p) by k-induction, trying k = 1..maxK. The base case is
 * discharged by BMC; a base-case hit returns Falsified with its
 * trace. @p simplePath adds the loop-freedom strengthening.
 */
McResult checkInduction(const Netlist &nl, const McModel &model,
                        const McProperty &p, unsigned maxK,
                        bool simplePath = true);

/**
 * Drive @p trace through a scalar clone of @p nl. Returns true iff
 * the simulator reproduces the recorded state evolution *and* the
 * property violation at the recorded step; a divergence is
 * described in @p what.
 */
bool replayMcTrace(const Netlist &nl, const McProperty &p,
                   const McTrace &trace, std::string *what = nullptr);

/**
 * The same replay through lane 0 of a LaneGroup built over @p nl —
 * the wide compiled backend — so solver, scalar interpreter, and
 * word-parallel dispatch all agree on the counterexample.
 */
bool replayMcTraceWide(const Netlist &nl, const McProperty &p,
                       const McTrace &trace,
                       std::string *what = nullptr);

/** Outcome of the sequential reset-coverage (xfree) analysis. */
struct SeqResetCoverageResult
{
    bool ok = false;
    std::string detail;
    /** Depth the analysis ran at. */
    unsigned depth = 0;
    /** Per DFF (commit order): value after `depth` cycles is fully
     *  determined by the inputs, regardless of the power-on state. */
    std::vector<uint8_t> covered;
    uint64_t solves = 0;
};

/**
 * X-free-after-reset, sequentially: two copies of the unrolled
 * machine share every per-frame input but start from two arbitrary
 * (unconstrained) states; a DFF whose two copies are provably equal
 * after @p depth cycles self-initializes within that window. This
 * refines PR 6's ternary reset-coverage rule, which must give up on
 * any state bit whose re-initialization needs correlated values the
 * ternary domain cannot express.
 */
SeqResetCoverageResult seqResetCoverage(const Netlist &nl,
                                        const McModel &model,
                                        unsigned depth);

} // namespace flexi

#endif // FLEXI_ANALYSIS_MC_BMC_HH
