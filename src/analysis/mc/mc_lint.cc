#include "mc_lint.hh"

#include "common/logging.hh"

namespace flexi
{

namespace
{

Diagnostic
mcDiag(Severity sev, const std::string &rule,
       const std::string &message)
{
    Diagnostic d;
    d.severity = sev;
    d.rule = rule;
    d.module = "mc";
    d.message = message;
    return d;
}

/** Check one frame property and append its diagnostics. */
void
checkProperty(const Netlist &nl, const McLintOptions &opts,
              const McProperty &p, McLintOutcome &out)
{
    McResult res;
    if (opts.inductDepth > 0) {
        res = checkInduction(nl, opts.model, p, opts.inductDepth);
        if (res.status == McStatus::Unknown && opts.bmcDepth > 0) {
            // Induction could not close the proof; fall back to a
            // bounded falsification attempt so the report still
            // says something concrete about reachable cycles.
            McResult bmc = checkBmc(nl, opts.model, p,
                                    opts.bmcDepth);
            out.report.add(mcDiag(Severity::Warning, "prop-unknown",
                                  res.detail));
            res = bmc;
        }
    } else {
        res = checkBmc(nl, opts.model, p, opts.bmcDepth);
    }

    switch (res.status) {
      case McStatus::Proved:
        out.report.add(
            mcDiag(Severity::Note, "prop-proved", res.detail));
        return;
      case McStatus::Clean:
        out.report.add(
            mcDiag(Severity::Note, "prop-bmc-clean", res.detail));
        return;
      case McStatus::Unknown:
        out.report.add(
            mcDiag(Severity::Warning, "prop-unknown", res.detail));
        return;
      case McStatus::Invalid:
        out.report.add(
            mcDiag(Severity::Error, "prop-invalid", res.detail));
        return;
      case McStatus::Falsified:
        break;
    }

    // Never report a solver trace the simulators won't reproduce.
    std::string why;
    bool scalar = replayMcTrace(nl, p, res.trace, &why);
    bool wide = scalar && replayMcTraceWide(nl, p, res.trace, &why);
    if (!scalar || !wide) {
        out.report.add(mcDiag(
            Severity::Error, "prop-replay-diverged",
            strfmt("%s (%s replay: %s)", res.detail.c_str(),
                   scalar ? "wide" : "scalar", why.c_str())));
        return;
    }
    out.report.add(mcDiag(
        Severity::Error, "prop-cex",
        strfmt("%s; confirmed by scalar and wide replay\n%s",
               res.detail.c_str(), res.trace.text().c_str())));
    out.traces.push_back(res.trace);
}

void
checkXFree(const Netlist &nl, const McLintOptions &opts,
           const McProperty &p, McLintOutcome &out)
{
    SeqResetCoverageResult res =
        seqResetCoverage(nl, opts.model, p.param);
    if (res.covered.empty() && !res.ok) {
        out.report.add(
            mcDiag(Severity::Error, "prop-invalid", res.detail));
        return;
    }
    if (res.ok) {
        out.report.add(mcDiag(
            Severity::Note, "prop-proved",
            strfmt("'%s': %s", p.spec.c_str(),
                   res.detail.c_str())));
        return;
    }
    Diagnostic d = mcDiag(
        Severity::Warning, "x-after-reset-seq",
        strfmt("'%s': %s", p.spec.c_str(), res.detail.c_str()));
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i)
        if (!res.covered[i])
            d.nets.push_back(dffs[i].q);
    out.report.add(std::move(d));
}

} // namespace

McLintOutcome
mcLint(const Netlist &nl, const McLintOptions &opts)
{
    McLintOutcome out;

    std::vector<McProperty> props;
    if (opts.props.empty()) {
        props = defaultProperties(opts.model);
    } else {
        for (const std::string &spec : opts.props) {
            McProperty p;
            std::string err;
            if (!parsePropertySpec(spec, p, &err)) {
                out.report.add(mcDiag(
                    Severity::Error, "prop-invalid",
                    strfmt("'%s': %s", spec.c_str(), err.c_str())));
                continue;
            }
            props.push_back(std::move(p));
        }
    }

    for (McProperty &p : props) {
        std::string err = validateProperty(nl, opts.model, p);
        if (!err.empty()) {
            out.report.add(mcDiag(
                Severity::Error, "prop-invalid",
                strfmt("'%s': %s", p.spec.c_str(), err.c_str())));
            continue;
        }
        if (p.kind == McProperty::Kind::XFree)
            checkXFree(nl, opts, p, out);
        else
            checkProperty(nl, opts, p, out);
    }

    out.report.resolveNetNames(nl);
    return out;
}

} // namespace flexi
