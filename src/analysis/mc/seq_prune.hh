/**
 * @file
 * Sequentially-certified netlist pruning beyond the ternary fixpoint.
 *
 * The PR-6 prune() folds what the ternary dataflow engine can see:
 * nets constant in the ternary abstraction of every reachable state.
 * That abstraction cannot express *correlations* — AND(x, ~x) is
 * X when x is X, two registers fed by the same cone are two
 * independent Xs — so a class of real redundancy survives it.
 * seqPrune() goes after exactly that class, in three certified
 * stages:
 *
 *  1. prune() — the ternary baseline (PR-6 numbers).
 *
 *  2. seqMerge — two discovery engines over the pruned netlist:
 *
 *      - A universal SAT sweep: random-simulation signatures bucket
 *        nets whose 64-sample behavior matches (directly or
 *        inverted); SAT then proves each candidate equal (or
 *        anti-equal) to its class leader for *every* input and
 *        state assignment. One driver survives per polarity per
 *        class: same-polarity members read the leader's net, the
 *        first anti member's driver is replaced by an INV_X1 off
 *        the leader (or kept, when it already is one), and later
 *        anti members read that keeper.
 *
 *      - Sequential state invariants, proven by k-induction:
 *        reachable simulation from power-on nominates DFFs that
 *        never leave their init value and register pairs that never
 *        disagree (or never agree); mutual 1-induction with
 *        iterative dropping keeps the subset that actually proves.
 *        Constant DFFs fold to rails, the redundant half of each
 *        pair is deleted and its readers repointed at the survivor
 *        (through an INV_X1 for anti-pairs).
 *
 *  3. prune() again — the merge leaves dead D cones and unread
 *     drivers behind; the ternary engine sweeps them up.
 *
 * Every stage is SAT-certified: the two prune() calls by
 * certifyPrune(), the merge by certifySeqPrune() — an invariant-
 * aware observable miter that first discharges the state invariants
 * by induction (base case against power-on values, step case under
 * the invariant assumptions), then proves primary outputs and every
 * surviving DFF's next-state equal with the invariants asserted,
 * interior-sweeping the net map (with polarity) for incremental
 * hardening. A failed proof carries a replayable counterexample.
 */

#ifndef FLEXI_ANALYSIS_MC_SEQ_PRUNE_HH
#define FLEXI_ANALYSIS_MC_SEQ_PRUNE_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/dataflow/prune.hh"

namespace flexi
{

/** Inductive state invariants the merge relies on. */
struct SeqInvariants
{
    struct ConstDff
    {
        size_t index;   ///< DFF commit index
        bool value;     ///< == init; proven never to change
    };
    struct PairDff
    {
        size_t keep;      ///< surviving DFF (commit index)
        size_t drop;      ///< redundant DFF, folded onto keep
        bool inverted;    ///< drop == ~keep in every reachable state
    };
    std::vector<ConstDff> consts;
    std::vector<PairDff> pairs;

    bool empty() const { return consts.empty() && pairs.empty(); }
};

struct SeqPruneOptions
{
    DataflowOptions dataflow;
    /** Signature samples for the universal sweep (max 64). */
    unsigned simRounds = 64;
    /** Reachable-simulation runs / cycles nominating invariants. */
    unsigned simRuns = 8;
    unsigned simCycles = 64;
    uint64_t seed = 0x5eedf1e5;
    bool certify = true;
};

/** What the merge stage itself removed or rewrote. */
struct SeqMergeStats
{
    size_t mergedNets = 0;    ///< same-polarity drivers dropped
    size_t invDrivers = 0;    ///< anti drivers rewritten to INV_X1
    size_t constDffs = 0;     ///< sequentially-constant DFFs folded
    size_t pairDffs = 0;      ///< redundant pair halves deleted
};

struct SeqPruneResult
{
    bool ok = false;
    std::string detail;
    /** The final, elaborated netlist (same pad interface). */
    std::unique_ptr<Netlist> netlist;

    /** Original -> final, for strict-improvement reporting. */
    PruneStats stats;
    /** Original -> ternary-only prune (the PR-6 baseline). */
    PruneStats baseline;
    SeqMergeStats seq;
    SeqInvariants invariants;

    /** Original DFF index -> final index (composed over stages). */
    std::vector<size_t> dffMap;
    /** Original net -> final net; kNoNet when swept away. */
    std::vector<NetId> netMap;
    /** Parallel to netMap: final net carries the inverted value. */
    std::vector<uint8_t> netInv;

    /** All three stage certifications proved. */
    bool certified = false;
    EquivResult certification;
};

/**
 * Run the full pipeline on @p nl (must be elaborated). With
 * certification on (the default), a stage that fails its proof
 * aborts the pipeline and returns the counterexample.
 */
SeqPruneResult seqPrune(const Netlist &nl,
                        const SeqPruneOptions &opts = {});

/**
 * Discharge a merge: induction on @p inv (base case against
 * power-on values, step case under the invariant assumptions), then
 * the observable miter between @p orig and @p merged with the
 * invariants asserted. @p dffMap maps orig DFF indices to merged
 * ones (kPrunedAway for folded state); @p netMap / @p netInv map
 * orig nets to merged nets with polarity. Exposed so tests can
 * certify tampered merges and exercise the counterexample path.
 */
EquivResult certifySeqPrune(const Netlist &orig,
                            const Netlist &merged,
                            const SeqInvariants &inv,
                            const std::vector<size_t> &dffMap,
                            const std::vector<NetId> &netMap,
                            const std::vector<uint8_t> &netInv,
                            const DataflowOptions &opts = {});

} // namespace flexi

#endif // FLEXI_ANALYSIS_MC_SEQ_PRUNE_HH
