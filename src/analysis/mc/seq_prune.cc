#include "seq_prune.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "analysis/cnf_encoder.hh"
#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

using Result = SatSolver::Result;

/** Deterministic xorshift64 — discovery must be reproducible. */
struct Rng
{
    uint64_t s;
    explicit Rng(uint64_t seed) : s(seed ? seed : 1) {}
    uint64_t next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    bool bit() { return (next() >> 33) & 1; }
};

/** Full named input + state assignment from the last Sat model. */
EquivCounterexample
extractCex(const SatSolver &solver, const Netlist &nl,
           const NetlistEncoding &enc)
{
    EquivCounterexample cex;
    for (const auto &[name, net] : nl.primaryInputs())
        if (enc.hasLit(net))
            cex.assignment.emplace_back(
                name, solver.modelValue(enc.lit(net)));
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i)
        cex.assignment.emplace_back(nl.netName(dffs[i].q),
                                    solver.modelValue(enc.dffQ[i]));
    return cex;
}

/** Two-solve equality proof with incremental hardening. */
bool
proveEqual(CnfBuilder &cnf, SatLit a, SatLit b, uint64_t &solves)
{
    if (a == b)
        return true;
    SatSolver &solver = cnf.solver();
    ++solves;
    if (solver.solve({a, ~b}) == Result::Sat)
        return false;
    ++solves;
    if (solver.solve({~a, b}) == Result::Sat)
        return false;
    solver.addClause({~a, b});
    solver.addClause({a, ~b});
    return true;
}

/** Prove @p l equals constant @p value; harden on success. */
bool
proveConst(CnfBuilder &cnf, SatLit l, bool value, uint64_t &solves)
{
    SatSolver &solver = cnf.solver();
    SatLit want = value ? l : ~l;
    ++solves;
    if (solver.solve({~want}) == Result::Sat)
        return false;
    solver.addClause({want});
    return true;
}

bool
assertTies(CnfBuilder &cnf, const Netlist &nl,
           const DataflowOptions &opts, const NetlistEncoding &enc,
           std::string *err)
{
    for (const PadTie &tie : opts.ties) {
        auto it = nl.primaryInputs().find(tie.input);
        if (it == nl.primaryInputs().end()) {
            if (err)
                *err = strfmt("tie names unknown input '%s'",
                              tie.input.c_str());
            return false;
        }
        SatLit l = enc.lit(it->second);
        cnf.assertLit(tie.value ? l : ~l);
    }
    return true;
}

/** What the merge stage will do to each net of the stage-1 netlist. */
struct MergePlan
{
    /** Class leader this net's value is taken from; kNoNet keeps
     *  the net's own driver. */
    std::vector<NetId> repNet;
    /** This net keeps its identity but its driver is rewritten to
     *  INV_X1(repNet) — the class's anti-polarity keeper. */
    std::vector<uint8_t> toInv;
    SeqInvariants inv;
};

/**
 * Universal net-equivalence sweep: 64-sample random signatures over
 * free state and inputs nominate candidate classes; SAT proofs
 * (under the tie environment) make them real. Populates
 * plan.repNet / plan.toInv.
 */
void
universalSweep(const Netlist &nl, const SeqPruneOptions &opts,
               MergePlan &plan, SeqMergeStats &stats,
               uint64_t &solves)
{
    size_t num_nets = nl.numNets();
    unsigned samples =
        std::min<unsigned>(std::max(opts.simRounds, 1u), 64);

    // Combinational driver of each net; -1 for inputs, rails, Q.
    std::vector<int> driver(num_nets, -1);
    const auto &cells = nl.cells();
    for (size_t i = 0; i < cells.size(); ++i)
        if (cells[i].type != CellType::DFF_X1 &&
            cells[i].type != CellType::DFF_X2)
            driver[cells[i].output] = static_cast<int>(i);

    // Simulation signatures: one bit per random sample.
    Rng rng(opts.seed);
    auto sim = nl.clone();
    std::vector<uint64_t> sig(num_nets, 0);
    std::vector<uint8_t> state(nl.numDffs());
    for (unsigned s = 0; s < samples; ++s) {
        for (auto &b : state)
            b = rng.bit();
        sim->restoreDffState(state);
        for (const auto &[name, net] : nl.primaryInputs())
            sim->setInput(name, rng.bit());
        for (const PadTie &tie : opts.dataflow.ties)
            sim->setInput(tie.input, tie.value);
        sim->evaluate();
        for (NetId n = 0; n < num_nets; ++n)
            if (sim->netValue(n))
                sig[n] |= uint64_t(1) << s;
    }

    // Candidate order decides who leads a class: rails, then pads
    // and state (never droppable), then cell outputs in plan
    // (topological) order — so a member's leader always exists by
    // the time the rebuild reaches the member.
    std::vector<NetId> order;
    order.reserve(num_nets);
    order.push_back(nl.zero());
    order.push_back(nl.one());
    for (const auto &[name, net] : nl.primaryInputs())
        order.push_back(net);
    for (const auto &dff : nl.dffs())
        order.push_back(dff.q);
    for (const auto &step : nl.planSteps())
        order.push_back(cells[step.cell].output);

    std::unordered_map<uint64_t, std::vector<NetId>> buckets;
    for (NetId n : order)
        buckets[std::min(sig[n], ~sig[n])].push_back(n);

    SatSolver solver;
    CnfBuilder cnf(solver);
    NetlistEncodeOptions enc_opts;
    enc_opts.mode = NetlistEncodeMode::Reference;
    NetlistEncoding enc = encodeNetlist(cnf, nl, enc_opts);
    std::string err;
    if (!assertTies(cnf, nl, opts.dataflow, enc, &err))
        panic("universalSweep: %s", err.c_str());

    struct Class
    {
        NetId leader;
        NetId antiKeeper = kNoNet;
    };
    for (NetId n : order) {
        auto &bucket = buckets[std::min(sig[n], ~sig[n])];
        if (bucket.size() < 2)
            continue;
        std::vector<Class> classes;
        for (NetId m : bucket) {
            if (!enc.hasLit(m)) {
                classes.push_back({m});
                continue;
            }
            bool matched = false;
            for (Class &cls : classes) {
                if (!enc.hasLit(cls.leader))
                    continue;
                bool anti = sig[m] == ~sig[cls.leader];
                SatLit want = anti ? ~enc.lit(cls.leader)
                                   : enc.lit(cls.leader);
                if (!proveEqual(cnf, enc.lit(m), want, solves))
                    continue;
                matched = true;
                if (driver[m] < 0)
                    break;   // pads / state can't drop drivers
                if (!anti) {
                    plan.repNet[m] = cls.leader;
                    ++stats.mergedNets;
                } else if (cls.antiKeeper != kNoNet) {
                    plan.repNet[m] = cls.antiKeeper;
                    ++stats.mergedNets;
                } else {
                    // First anti member: it becomes the class's
                    // inverted keeper. A driver bigger than an
                    // inverter is rewritten to INV_X1(leader).
                    cls.antiKeeper = m;
                    if (cells[driver[m]].type != CellType::INV_X1 &&
                        cells[driver[m]].type != CellType::INV_X2) {
                        plan.repNet[m] = cls.leader;
                        plan.toInv[m] = 1;
                        ++stats.invDrivers;
                    }
                }
                break;
            }
            if (!matched)
                classes.push_back({m});
        }
        bucket.clear();   // each bucket processed once
    }
}

/**
 * Nominate sequential state invariants by reachable simulation
 * (power-on state, random inputs under the ties), then keep the
 * subset that survives mutual 1-induction with iterative dropping.
 */
SeqInvariants
discoverInvariants(const Netlist &nl, const SeqPruneOptions &opts,
                   uint64_t &solves)
{
    SeqInvariants inv;
    auto dffs = nl.dffs();
    size_t num_dffs = dffs.size();
    if (num_dffs == 0)
        return inv;

    // Reachable state samples (the power-on state is sample 0).
    Rng rng(opts.seed ^ 0x9e3779b97f4a7c15ull);
    std::vector<std::vector<uint8_t>> samples;
    for (unsigned run = 0; run < std::max(opts.simRuns, 1u);
         ++run) {
        auto sim = nl.clone();
        sim->reset();
        for (unsigned c = 0; c <= opts.simCycles; ++c) {
            samples.push_back(sim->saveDffState());
            for (const auto &[name, net] : nl.primaryInputs())
                sim->setInput(name, rng.bit());
            for (const PadTie &tie : opts.dataflow.ties)
                sim->setInput(tie.input, tie.value);
            sim->evaluate();
            sim->clockEdge();
        }
    }

    std::vector<uint8_t> is_const(num_dffs, 1);
    for (const auto &s : samples)
        for (size_t i = 0; i < num_dffs; ++i)
            if ((s[i] != 0) != dffs[i].init)
                is_const[i] = 0;

    // Pair candidates among the non-constant DFFs: never disagree,
    // or never agree, across every sample. Each DFF keeps its
    // smallest such partner, so classes chain onto one survivor.
    struct PairCand
    {
        size_t keep, drop;
        bool inverted;
    };
    std::vector<PairCand> pair_cands;
    for (size_t j = 0; j < num_dffs; ++j) {
        if (is_const[j])
            continue;
        for (size_t i = 0; i < j; ++i) {
            if (is_const[i])
                continue;
            bool eq = true, ne = true;
            for (const auto &s : samples) {
                if (s[i] != s[j])
                    eq = false;
                else
                    ne = false;
                if (!eq && !ne)
                    break;
            }
            if (eq || ne) {
                pair_cands.push_back({i, j, ne});
                break;
            }
        }
    }

    std::vector<size_t> const_cands;
    for (size_t i = 0; i < num_dffs; ++i)
        if (is_const[i])
            const_cands.push_back(i);
    if (const_cands.empty() && pair_cands.empty())
        return inv;

    // Mutual 1-induction: assume every live candidate on Q through
    // an activation literal, check each on the captured D; drop
    // failures and iterate to the greatest closed subset.
    SatSolver solver;
    CnfBuilder cnf(solver);
    NetlistEncodeOptions enc_opts;
    enc_opts.mode = NetlistEncodeMode::Reference;
    NetlistEncoding enc = encodeNetlist(cnf, nl, enc_opts);
    std::string err;
    if (!assertTies(cnf, nl, opts.dataflow, enc, &err))
        panic("discoverInvariants: %s", err.c_str());

    std::vector<SatLit> const_act(const_cands.size());
    for (size_t c = 0; c < const_cands.size(); ++c) {
        size_t i = const_cands[c];
        const_act[c] = cnf.fresh();
        SatLit q = enc.dffQ[i];
        cnf.addClause({~const_act[c], dffs[i].init ? q : ~q});
    }
    std::vector<SatLit> pair_act(pair_cands.size());
    for (size_t c = 0; c < pair_cands.size(); ++c) {
        const PairCand &p = pair_cands[c];
        pair_act[c] = cnf.fresh();
        SatLit qk = enc.dffQ[p.keep];
        SatLit qd = p.inverted ? ~enc.dffQ[p.drop]
                               : enc.dffQ[p.drop];
        cnf.addClause({~pair_act[c], ~qk, qd});
        cnf.addClause({~pair_act[c], qk, ~qd});
    }

    std::vector<uint8_t> const_live(const_cands.size(), 1);
    std::vector<uint8_t> pair_live(pair_cands.size(), 1);
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<SatLit> assume;
        for (size_t c = 0; c < const_cands.size(); ++c)
            if (const_live[c])
                assume.push_back(const_act[c]);
        for (size_t c = 0; c < pair_cands.size(); ++c)
            if (pair_live[c])
                assume.push_back(pair_act[c]);

        auto holds = [&](SatLit bad) {
            auto a = assume;
            a.push_back(bad);
            ++solves;
            return solver.solve(a) == Result::Unsat;
        };
        for (size_t c = 0; c < const_cands.size(); ++c) {
            if (!const_live[c])
                continue;
            size_t i = const_cands[c];
            SatLit d = enc.dffD[i];
            if (!holds(dffs[i].init ? ~d : d)) {
                const_live[c] = 0;
                changed = true;
            }
        }
        for (size_t c = 0; c < pair_cands.size(); ++c) {
            if (!pair_live[c])
                continue;
            const PairCand &p = pair_cands[c];
            SatLit dk = enc.dffD[p.keep];
            SatLit dd = p.inverted ? ~enc.dffD[p.drop]
                                   : enc.dffD[p.drop];
            if (!holds(cnf.mkXor(dk, dd))) {
                pair_live[c] = 0;
                changed = true;
            }
        }
    }

    for (size_t c = 0; c < const_cands.size(); ++c)
        if (const_live[c])
            inv.consts.push_back(
                {const_cands[c], dffs[const_cands[c]].init});
    // Keepers never appear as drops: each DFF chains onto its
    // *smallest* sample-equivalent partner, and sample equivalence
    // is transitive, so every member of a chain names the chain
    // head. Const candidates were excluded from pairing outright.
    for (size_t c = 0; c < pair_cands.size(); ++c)
        if (pair_live[c])
            inv.pairs.push_back({pair_cands[c].keep,
                                 pair_cands[c].drop,
                                 pair_cands[c].inverted});
    return inv;
}

/**
 * Rebuild the netlist with the merge applied: class members read
 * their leader (through the INV keeper for anti polarity), constant
 * DFFs become rails, pair drops alias the surviving register. The
 * stage-3 prune() sweeps the dead cones this leaves behind.
 */
std::unique_ptr<Netlist>
applyMerge(const Netlist &nl, const MergePlan &plan,
           std::vector<size_t> &dff_map, std::vector<NetId> &net_map,
           SeqMergeStats &stats, std::string *err)
{
    const auto &cells = nl.cells();
    auto dffs = nl.dffs();
    size_t num_nets = nl.numNets();

    auto out = std::make_unique<Netlist>(nl.name() + "-seq");
    net_map.assign(num_nets, kNoNet);
    net_map[nl.zero()] = out->zero();
    net_map[nl.one()] = out->one();
    for (const auto &[name, net] : nl.primaryInputs())
        net_map[net] = out->addInput(name);

    std::vector<int8_t> const_val(dffs.size(), -1);
    for (const auto &c : plan.inv.consts)
        const_val[c.index] = c.value;
    std::vector<ptrdiff_t> pair_keep(dffs.size(), -1);
    std::vector<uint8_t> pair_inv(dffs.size(), 0);
    for (const auto &p : plan.inv.pairs) {
        pair_keep[p.drop] = static_cast<ptrdiff_t>(p.keep);
        pair_inv[p.drop] = p.inverted;
    }

    dff_map.assign(dffs.size(), kPrunedAway);
    size_t next_dff = 0;
    for (size_t i = 0; i < dffs.size(); ++i) {
        if (const_val[i] >= 0) {
            net_map[dffs[i].q] =
                const_val[i] ? out->one() : out->zero();
            ++stats.constDffs;
            continue;
        }
        if (pair_keep[i] >= 0) {
            NetId keep_q = net_map[dffs[pair_keep[i]].q];
            if (keep_q == kNoNet) {
                *err = strfmt("pair keeper %zu unmapped",
                              static_cast<size_t>(pair_keep[i]));
                return nullptr;
            }
            net_map[dffs[i].q] =
                pair_inv[i]
                    ? out->addCell(CellType::INV_X1, {keep_q},
                                   cells[dffs[i].cell].module)
                    : keep_q;
            ++stats.pairDffs;
            continue;
        }
        bool x2 = cells[dffs[i].cell].type == CellType::DFF_X2;
        NetId q = out->addDff(out->zero(),
                              cells[dffs[i].cell].module,
                              dffs[i].init, x2);
        net_map[dffs[i].q] = q;
        dff_map[i] = next_dff++;
    }

    for (const auto &step : nl.planSteps()) {
        const CellInst &cell = cells[step.cell];
        NetId m = cell.output;
        if (plan.repNet[m] != kNoNet && !plan.toInv[m]) {
            net_map[m] = net_map[plan.repNet[m]];
            if (net_map[m] == kNoNet) {
                *err = strfmt("merge leader of %s unmapped",
                              nl.netName(m).c_str());
                return nullptr;
            }
            continue;
        }
        if (plan.toInv[m]) {
            NetId rep = net_map[plan.repNet[m]];
            if (rep == kNoNet) {
                *err = strfmt("merge leader of %s unmapped",
                              nl.netName(m).c_str());
                return nullptr;
            }
            net_map[m] = out->addCell(CellType::INV_X1, {rep},
                                      cell.module);
            continue;
        }
        std::vector<NetId> ins;
        ins.reserve(cell.inputs.size());
        for (NetId in : cell.inputs) {
            if (in == kNoNet || net_map[in] == kNoNet) {
                *err = strfmt("cell #%u reads an unmapped net",
                              step.cell);
                return nullptr;
            }
            ins.push_back(net_map[in]);
        }
        net_map[m] = out->addCell(cell.type, ins, cell.module);
    }

    for (size_t i = 0; i < dffs.size(); ++i) {
        if (dff_map[i] == kPrunedAway)
            continue;
        NetId d = net_map[dffs[i].d];
        if (d == kNoNet) {
            *err = strfmt("surviving DFF %zu has an unmapped D "
                          "cone", i);
            return nullptr;
        }
        out->setDffInput(net_map[dffs[i].q], d);
    }
    for (const auto &[name, net] : nl.primaryOutputs()) {
        if (net_map[net] == kNoNet) {
            *err = strfmt("output '%s' has an unmapped net",
                          name.c_str());
            return nullptr;
        }
        out->addOutput(name, net_map[net]);
    }

    out->elaborate();
    return out;
}

} // namespace

EquivResult
certifySeqPrune(const Netlist &orig, const Netlist &merged,
                const SeqInvariants &inv,
                const std::vector<size_t> &dffMap,
                const std::vector<NetId> &netMap,
                const std::vector<uint8_t> &netInv,
                const DataflowOptions &opts)
{
    EquivResult res;
    if (!orig.elaborated() || !merged.elaborated()) {
        res.detail = "certifySeqPrune requires elaborated netlists";
        return res;
    }
    auto odffs = orig.dffs();
    auto mdffs = merged.dffs();
    if (dffMap.size() != odffs.size()) {
        res.detail = "dffMap does not cover the original state";
        return res;
    }

    // Induction base case: the power-on state satisfies every
    // invariant the merge relies on.
    for (const auto &c : inv.consts) {
        if (c.value != odffs[c.index].init) {
            res.detail = strfmt(
                "constant state bit %s disagrees with its power-on "
                "value (base case)",
                orig.netName(odffs[c.index].q).c_str());
            return res;
        }
    }
    for (const auto &p : inv.pairs) {
        bool want = p.inverted ? !odffs[p.keep].init
                               : odffs[p.keep].init;
        if (odffs[p.drop].init != want) {
            res.detail = strfmt(
                "pair %s/%s disagrees at power-on (base case)",
                orig.netName(odffs[p.keep].q).c_str(),
                orig.netName(odffs[p.drop].q).c_str());
            return res;
        }
    }

    SatSolver solver;
    CnfBuilder cnf(solver);
    NetlistEncodeOptions enc_opts;
    enc_opts.mode = NetlistEncodeMode::Reference;
    NetlistEncoding eo = encodeNetlist(cnf, orig, enc_opts);
    if (!assertTies(cnf, orig, opts, eo, &res.detail))
        return res;

    auto fail = [&](const std::string &who) {
        res.hasCex = true;
        res.cex = extractCex(solver, orig, eo);
        res.cex.mismatched.push_back(who);
        res.conflicts = solver.stats().conflicts;
    };

    // Assume the invariants on the current state...
    for (const auto &c : inv.consts)
        cnf.assertLit(c.value ? eo.dffQ[c.index]
                              : ~eo.dffQ[c.index]);
    for (const auto &p : inv.pairs)
        cnf.bindEqual(eo.dffQ[p.drop],
                      p.inverted ? ~eo.dffQ[p.keep]
                                 : eo.dffQ[p.keep]);

    // ...and prove them on the next state (the induction step).
    for (const auto &c : inv.consts) {
        if (!proveConst(cnf, eo.dffD[c.index], c.value,
                        res.solves)) {
            fail(orig.netName(odffs[c.index].q) +
                 " (constant induction)");
            return res;
        }
    }
    for (const auto &p : inv.pairs) {
        SatLit want = p.inverted ? ~eo.dffD[p.keep]
                                 : eo.dffD[p.keep];
        if (!proveEqual(cnf, eo.dffD[p.drop], want, res.solves)) {
            fail(orig.netName(odffs[p.drop].q) +
                 " (pair induction)");
            return res;
        }
    }

    // Observable miter: pads shared by name, surviving state shared
    // through the merge's DFF map.
    NetlistEncoding em = encodeNetlist(cnf, merged, enc_opts);
    for (const auto &[name, onet] : orig.primaryInputs()) {
        auto it = merged.primaryInputs().find(name);
        if (it == merged.primaryInputs().end()) {
            res.detail = strfmt("merged netlist lost input '%s'",
                                name.c_str());
            return res;
        }
        cnf.bindEqual(eo.lit(onet), em.lit(it->second));
    }
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (dffMap[i] == kPrunedAway)
            continue;
        if (dffMap[i] >= mdffs.size()) {
            res.detail = "dffMap points past the merged state";
            return res;
        }
        cnf.bindEqual(eo.dffQ[i], em.dffQ[dffMap[i]]);
    }

    // Interior sweep (best effort, with polarity): harden original
    // nets onto their merged counterparts cone by cone.
    if (!netMap.empty()) {
        for (const auto &step : orig.planSteps()) {
            NetId onet = orig.cells()[step.cell].output;
            if (onet >= netMap.size() || netMap[onet] == kNoNet)
                continue;
            NetId mnet = netMap[onet];
            if (!eo.hasLit(onet) || !em.hasLit(mnet))
                continue;
            SatLit b = em.lit(mnet);
            if (onet < netInv.size() && netInv[onet])
                b = ~b;
            proveEqual(cnf, eo.lit(onet), b, res.solves);
        }
    }

    for (const auto &[name, onet] : orig.primaryOutputs()) {
        auto it = merged.primaryOutputs().find(name);
        if (it == merged.primaryOutputs().end()) {
            res.detail = strfmt("merged netlist lost output '%s'",
                                name.c_str());
            return res;
        }
        if (!proveEqual(cnf, eo.lit(onet), em.lit(it->second),
                        res.solves)) {
            fail(name);
            return res;
        }
    }
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (dffMap[i] == kPrunedAway)
            continue;
        if (!proveEqual(cnf, eo.dffD[i], em.dffD[dffMap[i]],
                        res.solves)) {
            fail(orig.netName(odffs[i].q) + " (next-state)");
            return res;
        }
    }

    res.proven = true;
    res.conflicts = solver.stats().conflicts;
    return res;
}

SeqPruneResult
seqPrune(const Netlist &nl, const SeqPruneOptions &opts)
{
    SeqPruneResult res;
    if (!nl.elaborated()) {
        res.detail = "seqPrune requires an elaborated netlist";
        return res;
    }

    // Stage 1: the ternary baseline.
    PruneResult p1 = prune(nl, opts.dataflow, opts.certify);
    if (!p1.ok) {
        res.detail = strfmt("stage-1 prune failed: %s",
                            p1.detail.c_str());
        return res;
    }
    if (opts.certify && !p1.certified) {
        res.detail = "stage-1 prune failed certification";
        res.certification = p1.certification;
        return res;
    }
    res.baseline = p1.stats;
    uint64_t solves = p1.certification.solves;
    uint64_t conflicts = p1.certification.conflicts;

    // Stage 2: sequential merge.
    const Netlist &base = *p1.netlist;
    MergePlan plan;
    plan.repNet.assign(base.numNets(), kNoNet);
    plan.toInv.assign(base.numNets(), 0);
    universalSweep(base, opts, plan, res.seq, solves);
    plan.inv = discoverInvariants(base, opts, solves);
    res.invariants = plan.inv;

    std::vector<size_t> dff_map2;
    std::vector<NetId> net_map2;
    std::string err;
    auto merged = applyMerge(base, plan, dff_map2, net_map2,
                             res.seq, &err);
    if (!merged) {
        res.detail = strfmt("merge rebuild failed: %s",
                            err.c_str());
        return res;
    }
    std::vector<uint8_t> net_inv2(base.numNets(), 0);
    if (opts.certify) {
        EquivResult cert = certifySeqPrune(base, *merged, plan.inv,
                                           dff_map2, net_map2,
                                           net_inv2, opts.dataflow);
        solves += cert.solves;
        conflicts += cert.conflicts;
        if (!cert.proven) {
            res.detail = "merge failed certification";
            res.certification = std::move(cert);
            res.certification.solves = solves;
            res.certification.conflicts = conflicts;
            return res;
        }
    }

    // Stage 3: sweep the dead cones the merge exposed.
    PruneResult p2 = prune(*merged, opts.dataflow, opts.certify);
    if (!p2.ok) {
        res.detail = strfmt("stage-3 prune failed: %s",
                            p2.detail.c_str());
        return res;
    }
    solves += p2.certification.solves;
    conflicts += p2.certification.conflicts;
    if (opts.certify && !p2.certified) {
        res.detail = "stage-3 prune failed certification";
        res.certification = p2.certification;
        res.certification.solves = solves;
        res.certification.conflicts = conflicts;
        return res;
    }

    // Compose the three stage maps into original -> final.
    res.dffMap.assign(nl.dffs().size(), kPrunedAway);
    for (size_t i = 0; i < res.dffMap.size(); ++i) {
        size_t a = p1.dffMap[i];
        if (a == kPrunedAway)
            continue;
        size_t b = dff_map2[a];
        if (b == kPrunedAway)
            continue;
        res.dffMap[i] = p2.dffMap[b];
    }
    res.netMap.assign(nl.numNets(), kNoNet);
    res.netInv.assign(nl.numNets(), 0);
    for (NetId n = 0; n < nl.numNets(); ++n) {
        NetId a = p1.netMap[n];
        if (a == kNoNet)
            continue;
        NetId b = net_map2[a];
        if (b == kNoNet)
            continue;
        res.netMap[n] = p2.netMap[b];
    }

    res.stats.cellsBefore = nl.numCells();
    res.stats.cellsAfter = p2.netlist->numCells();
    res.stats.dffsBefore = nl.dffs().size();
    res.stats.dffsAfter = p2.netlist->dffs().size();
    res.stats.deadCells =
        p1.stats.deadCells + p2.stats.deadCells;
    res.stats.constCells =
        p1.stats.constCells + p2.stats.constCells;
    res.stats.constDffs = p1.stats.constDffs + res.seq.constDffs +
                          p2.stats.constDffs;
    res.stats.nand2AreaBefore = nl.totalNand2Area();
    res.stats.nand2AreaAfter = p2.netlist->totalNand2Area();

    res.netlist = std::move(p2.netlist);
    res.certified = opts.certify;
    res.certification.proven = opts.certify;
    res.certification.solves = solves;
    res.certification.conflicts = conflicts;
    res.certification.detail =
        opts.certify ? "all three stages proved" : "not certified";
    res.detail = strfmt(
        "%zu -> %zu cells (ternary baseline %zu), %zu -> %zu state "
        "bits; merged %zu drivers, rewrote %zu to INV_X1, folded "
        "%zu constant and %zu paired registers",
        res.stats.cellsBefore, res.stats.cellsAfter,
        res.baseline.cellsAfter, res.stats.dffsBefore,
        res.stats.dffsAfter, res.seq.mergedNets,
        res.seq.invDrivers, res.seq.constDffs, res.seq.pairDffs);
    res.ok = true;
    return res;
}

} // namespace flexi
