#include "property.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace flexi
{

namespace
{

bool
parseUnsigned(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
}

bool
failParse(std::string *err, const std::string &why)
{
    if (err)
        *err = why;
    return false;
}

} // namespace

bool
parsePropertySpec(const std::string &spec, McProperty &out,
                  std::string *err)
{
    out = McProperty();
    out.spec = spec;

    if (spec.rfind("assert:", 0) == 0) {
        out.kind = McProperty::Kind::NetAssert;
        std::string body = spec.substr(7);
        size_t eq = body.rfind('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 2 != body.size())
            return failParse(err, "expected assert:<net>=<0|1>");
        char v = body[eq + 1];
        if (v != '0' && v != '1')
            return failParse(err, "expected assert:<net>=<0|1>");
        out.net = body.substr(0, eq);
        out.value = v == '1';
        return true;
    }
    if (spec.rfind("bound:", 0) == 0) {
        out.kind = McProperty::Kind::BusBound;
        std::string body = spec.substr(6);
        size_t s1 = body.find('/');
        size_t s2 = s1 == std::string::npos
                        ? std::string::npos
                        : body.find('/', s1 + 1);
        if (s1 == std::string::npos || s2 == std::string::npos)
            return failParse(err,
                             "expected bound:<bus>/<width>/<limit>");
        uint64_t width = 0, limit = 0;
        if (!parseUnsigned(body.substr(s1 + 1, s2 - s1 - 1), width) ||
            !parseUnsigned(body.substr(s2 + 1), limit) ||
            width == 0 || width > 64 || s1 == 0)
            return failParse(err,
                             "expected bound:<bus>/<width>/<limit>");
        out.bus = body.substr(0, s1);
        out.width = static_cast<unsigned>(width);
        out.limit = limit;
        return true;
    }
    auto withParam = [&](const char *head, McProperty::Kind kind,
                         unsigned dflt) {
        std::string h = head;
        if (spec == h) {
            out.kind = kind;
            out.param = dflt;
            return 1;
        }
        if (spec.rfind(h + ":", 0) == 0) {
            uint64_t p = 0;
            if (!parseUnsigned(spec.substr(h.size() + 1), p) ||
                p == 0 || p > 64)
                return -1;
            out.kind = kind;
            out.param = static_cast<unsigned>(p);
            return 1;
        }
        return 0;
    };
    switch (withParam("watchdog", McProperty::Kind::Watchdog, 1)) {
      case 1: return true;
      case -1:
        return failParse(err, "expected watchdog[:N], N in 1..64");
      default: break;
    }
    switch (withParam("xfree", McProperty::Kind::XFree, 4)) {
      case 1: return true;
      case -1:
        return failParse(err, "expected xfree[:K], K in 1..64");
      default: break;
    }
    if (spec == "mmu-page") {
        out.kind = McProperty::Kind::MmuPage;
        return true;
    }
    return failParse(
        err, "unknown property (assert:/bound:/watchdog/mmu-page/"
             "xfree)");
}

std::vector<McProperty>
defaultProperties(const McModel &model)
{
    std::vector<McProperty> props;
    McProperty p;
    if (model.program) {
        parsePropertySpec("watchdog", p);
        props.push_back(p);
        parsePropertySpec("mmu-page", p);
        props.push_back(p);
    }
    parsePropertySpec("xfree", p);
    props.push_back(p);
    return props;
}

std::string
validateProperty(const Netlist &nl, const McModel &model,
                 McProperty &p)
{
    switch (p.kind) {
      case McProperty::Kind::NetAssert:
        if (nl.findNet(p.net) == kNoNet)
            return strfmt("no net named '%s' in netlist '%s'",
                          p.net.c_str(), nl.name().c_str());
        return "";
      case McProperty::Kind::BusBound:
        if (resolvePadBus(nl, p.bus, p.width, false).empty())
            return strfmt(
                "no %u-bit output bus '%s' in netlist '%s'",
                p.width, p.bus.c_str(), nl.name().c_str());
        return "";
      case McProperty::Kind::Watchdog:
        if (!model.program)
            return "watchdog needs the ROM-closed model "
                   "(give a program)";
        if (resolvePadBus(nl, "pc", kPcBits, false).empty())
            return strfmt("netlist '%s' has no pc pad bus",
                          nl.name().c_str());
        return "";
      case McProperty::Kind::MmuPage: {
        if (!model.program)
            return "mmu-page needs the ROM-closed model "
                   "(give a program)";
        if (model.program->numPages() > 1)
            return "mmu-page supports single-page programs only";
        if (model.program->pageFill(0) == 0)
            return "mmu-page: the program image is empty";
        if (resolvePadBus(nl, "pc", kPcBits, false).empty())
            return strfmt("netlist '%s' has no pc pad bus",
                          nl.name().c_str());
        p.limit = model.program->pageFill(0);
        return "";
      }
      case McProperty::Kind::XFree:
        return "";
    }
    return "unreachable";
}

SatLit
propertyLit(CnfBuilder &cnf, const Unrolling &u, const McProperty &p,
            unsigned t)
{
    const Netlist &nl = u.netlist();
    switch (p.kind) {
      case McProperty::Kind::NetAssert: {
        NetId n = nl.findNet(p.net);
        if (n == kNoNet || !u.frame(t).hasLit(n))
            panic("propertyLit: unresolved net '%s'",
                  p.net.c_str());
        SatLit l = u.netLit(t, n);
        return p.value ? l : ~l;
      }
      case McProperty::Kind::BusBound: {
        auto nets = resolvePadBus(nl, p.bus, p.width, false);
        if (nets.empty())
            panic("propertyLit: unresolved bus '%s'",
                  p.bus.c_str());
        return cnf.lessThanConst(u.busLits(t, nets), p.limit);
      }
      case McProperty::Kind::MmuPage: {
        // limit resolved by validateProperty (page-0 fill).
        auto nets = resolvePadBus(nl, "pc", kPcBits, false);
        return cnf.lessThanConst(u.busLits(t, nets), p.limit);
      }
      case McProperty::Kind::Watchdog: {
        // Wedge stability: PC stuck from t to t+N implies it stays
        // stuck one more cycle. docs/FORMAL.md derives the
        // trips-within-N watchdog guarantee from this.
        auto nets = resolvePadBus(nl, "pc", kPcBits, false);
        std::vector<SatLit> stuck;
        for (unsigned i = 0; i < p.param; ++i)
            stuck.push_back(
                cnf.equalWords(u.busLits(t + i, nets),
                               u.busLits(t + i + 1, nets)));
        SatLit still =
            cnf.equalWords(u.busLits(t + p.param, nets),
                           u.busLits(t + p.param + 1, nets));
        return cnf.mkOr(~cnf.mkAndN(stuck), still);
      }
      case McProperty::Kind::XFree:
        panic("propertyLit: xfree is checked by seqResetCoverage()");
    }
    panic("propertyLit: bad kind");
}

bool
propertyHoldsConcrete(const McProperty &p,
                      const std::vector<unsigned> &pc,
                      const std::vector<unsigned> &bits, unsigned t)
{
    switch (p.kind) {
      case McProperty::Kind::NetAssert:
        return (bits.at(t) != 0) == p.value;
      case McProperty::Kind::BusBound:
        return bits.at(t) < p.limit;
      case McProperty::Kind::MmuPage:
        return pc.at(t) < p.limit;
      case McProperty::Kind::Watchdog: {
        for (unsigned i = 0; i < p.param; ++i)
            if (pc.at(t + i) != pc.at(t + i + 1))
                return true;   // premise fails: vacuously holds
        return pc.at(t + p.param) == pc.at(t + p.param + 1);
      }
      case McProperty::Kind::XFree:
        panic("propertyHoldsConcrete: xfree has no frame instance");
    }
    panic("propertyHoldsConcrete: bad kind");
}

} // namespace flexi
