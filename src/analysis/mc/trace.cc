/**
 * @file
 * Counterexample trace rendering and simulator replay.
 *
 * A trace leaving the solver is only as trustworthy as the encoding
 * it came from, so every BMC counterexample is replayed against the
 * simulators before it is reported: the scalar interpreter
 * (replayMcTrace) and lane 0 of the wide compiled backend
 * (replayMcTraceWide) must both reproduce the recorded state
 * evolution cycle by cycle and the concrete property violation at
 * the recorded step.
 */

#include <map>

#include "analysis/equiv.hh"
#include "analysis/mc/bmc.hh"
#include "common/logging.hh"
#include "netlist/lane_group.hh"

namespace flexi
{

namespace
{

/** VCD identifier for signal @p n: printable chars, base 94. */
std::string
vcdId(size_t n)
{
    std::string id;
    do {
        id += static_cast<char>('!' + n % 94);
        n /= 94;
    } while (n);
    return id;
}

bool
failReplay(std::string *what, const std::string &why)
{
    if (what)
        *what = why;
    return false;
}

/**
 * The per-frame samples a concrete replay feeds
 * propertyHoldsConcrete(): the packed PC pads and the property's
 * own observable (assert net / bound bus).
 */
struct ReplayProbe
{
    std::vector<NetId> pc;
    NetId net = kNoNet;
    std::vector<NetId> bus;

    ReplayProbe(const Netlist &nl, const McProperty &p)
    {
        pc = resolvePadBus(nl, "pc", kPcBits, false);
        if (p.kind == McProperty::Kind::NetAssert)
            net = nl.findNet(p.net);
        else if (p.kind == McProperty::Kind::BusBound)
            bus = resolvePadBus(nl, p.bus, p.width, false);
    }
};

template <typename F>
unsigned
packNets(const std::vector<NetId> &nets, F value)
{
    unsigned v = 0;
    for (size_t i = 0; i < nets.size(); ++i)
        v |= value(nets[i]) ? 1u << i : 0;
    return v;
}

} // namespace

std::string
McTrace::text() const
{
    std::string s;
    for (size_t t = 0; t < frames.size(); ++t) {
        s += strfmt("cycle %zu: %s", t,
                    packedAssignmentText(frames[t].state).c_str());
        if (!frames[t].inputs.empty())
            s += strfmt(" | in %s",
                        packedAssignmentText(frames[t].inputs)
                            .c_str());
        s += "\n";
    }
    s += strfmt("-> '%s' violated at cycle %u", property.c_str(),
                violationStep);
    return s;
}

std::string
McTrace::vcd() const
{
    std::string s = "$timescale 1ns $end\n$scope module mc $end\n";
    std::vector<std::pair<std::string, std::string>> sigs;
    if (!frames.empty()) {
        size_t n = 0;
        for (const auto &kv : frames[0].inputs)
            sigs.emplace_back(kv.first, vcdId(n++));
        for (const auto &kv : frames[0].state)
            sigs.emplace_back(kv.first, vcdId(n++));
    }
    for (const auto &sig : sigs)
        s += strfmt("$var wire 1 %s %s $end\n", sig.second.c_str(),
                    sig.first.c_str());
    s += "$upscope $end\n$enddefinitions $end\n";

    std::vector<int> last(sigs.size(), -1);
    for (size_t t = 0; t < frames.size(); ++t) {
        s += strfmt("#%zu\n", t);
        size_t n = 0;
        auto emit = [&](bool v) {
            if (last[n] != static_cast<int>(v)) {
                s += strfmt("%c%s\n", v ? '1' : '0',
                            sigs[n].second.c_str());
                last[n] = v;
            }
            ++n;
        };
        for (const auto &kv : frames[t].inputs)
            emit(kv.second);
        for (const auto &kv : frames[t].state)
            emit(kv.second);
    }
    s += strfmt("#%zu\n", frames.size());
    return s;
}

bool
replayMcTrace(const Netlist &nl, const McProperty &p,
              const McTrace &trace, std::string *what)
{
    if (trace.frames.empty() ||
        trace.violationStep + p.window() > trace.frames.size())
        return failReplay(what, "trace too short for the property");

    auto dffs = nl.dffs();
    std::map<std::string, size_t> dff_index;
    for (size_t i = 0; i < dffs.size(); ++i)
        dff_index[nl.netName(dffs[i].q)] = i;

    std::vector<uint8_t> state(dffs.size(), 0);
    for (const auto &kv : trace.frames[0].state) {
        auto it = dff_index.find(kv.first);
        if (it == dff_index.end())
            return failReplay(what, strfmt("trace names unknown "
                                           "state bit '%s'",
                                           kv.first.c_str()));
        state[it->second] = kv.second;
    }

    auto sim = nl.clone();
    sim->restoreDffState(state);

    ReplayProbe probe(nl, p);
    std::vector<unsigned> pcs, bits;
    for (size_t t = 0; t < trace.frames.size(); ++t) {
        for (const auto &kv : trace.frames[t].inputs)
            sim->setInput(kv.first, kv.second);
        sim->evaluate();
        for (const auto &kv : trace.frames[t].state)
            if (sim->dffValue(dff_index[kv.first]) != kv.second)
                return failReplay(
                    what, strfmt("state diverges from the trace at "
                                 "cycle %zu on %s",
                                 t, kv.first.c_str()));
        auto net_of = [&](NetId n) { return sim->netValue(n); };
        pcs.push_back(packNets(probe.pc, net_of));
        bits.push_back(probe.net != kNoNet
                           ? sim->netValue(probe.net)
                           : packNets(probe.bus, net_of));
        if (t + 1 < trace.frames.size())
            sim->clockEdge();
    }

    if (propertyHoldsConcrete(p, pcs, bits, trace.violationStep))
        return failReplay(what, strfmt("simulator says '%s' holds "
                                       "at cycle %u",
                                       p.spec.c_str(),
                                       trace.violationStep));
    return true;
}

bool
replayMcTraceWide(const Netlist &nl, const McProperty &p,
                  const McTrace &trace, std::string *what)
{
    if (trace.frames.empty() ||
        trace.violationStep + p.window() > trace.frames.size())
        return failReplay(what, "trace too short for the property");

    auto dffs = nl.dffs();
    std::map<std::string, size_t> dff_index;
    for (size_t i = 0; i < dffs.size(); ++i)
        dff_index[nl.netName(dffs[i].q)] = i;

    LaneGroup group(nl, LaneGroup::kWordLanes);
    group.reset();
    for (const auto &kv : trace.frames[0].state) {
        auto it = dff_index.find(kv.first);
        if (it == dff_index.end())
            return failReplay(what, strfmt("trace names unknown "
                                           "state bit '%s'",
                                           kv.first.c_str()));
        if (dffs[it->second].init != kv.second)
            group.flipDff(0, it->second);
    }

    ReplayProbe probe(nl, p);
    std::vector<unsigned> pcs, bits;
    uint64_t lane_word[LaneGroup::kMaxWords] = {};
    for (size_t t = 0; t < trace.frames.size(); ++t) {
        for (const auto &kv : trace.frames[t].inputs) {
            lane_word[0] = kv.second ? ~uint64_t(0) : 0;
            group.setInputLanes(kv.first, lane_word);
        }
        group.evaluate();
        // A DFF's Q net carries the committed state once evaluate()
        // has re-exposed it; check the recorded evolution there.
        for (const auto &kv : trace.frames[t].state)
            if (group.netValue(dffs[dff_index[kv.first]].q, 0) !=
                kv.second)
                return failReplay(
                    what, strfmt("wide backend diverges from the "
                                 "trace at cycle %zu on %s",
                                 t, kv.first.c_str()));
        auto net_of = [&](NetId n) { return group.netValue(n, 0); };
        pcs.push_back(packNets(probe.pc, net_of));
        bits.push_back(probe.net != kNoNet
                           ? group.netValue(probe.net, 0)
                           : packNets(probe.bus, net_of));
        if (t + 1 < trace.frames.size())
            group.clockEdge();
    }

    if (propertyHoldsConcrete(p, pcs, bits, trace.violationStep))
        return failReplay(what, strfmt("wide backend says '%s' "
                                       "holds at cycle %u",
                                       p.spec.c_str(),
                                       trace.violationStep));
    return true;
}

} // namespace flexi
