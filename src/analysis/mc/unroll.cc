#include "unroll.hh"

#include "common/logging.hh"

namespace flexi
{

std::vector<NetId>
resolvePadBus(const Netlist &nl, const std::string &prefix,
              unsigned width, bool input)
{
    const auto &map = input ? nl.primaryInputs()
                            : nl.primaryOutputs();
    std::vector<NetId> nets;
    nets.reserve(width);
    for (unsigned i = 0; i < width; ++i) {
        auto it = map.find(prefix + std::to_string(i));
        if (it == map.end())
            return {};
        nets.push_back(it->second);
    }
    return nets;
}

Unrolling::Unrolling(CnfBuilder &cnf, const Netlist &nl,
                     const McModel &model)
    : cnf_(cnf), nl_(nl), model_(model)
{
    if (!nl.elaborated())
        panic("Unrolling: netlist '%s' not elaborated",
              nl.name().c_str());
    if (model_.program) {
        IsaKind isa = model_.program->isa();
        wide_bus_ = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
        word_pc_ = isa == IsaKind::LoadStore4;
        pc_nets_ = resolvePadBus(nl, "pc", kPcBits, false);
        instr_nets_ =
            resolvePadBus(nl, "instr", wide_bus_ ? 16 : 8, true);
        if (pc_nets_.empty() || instr_nets_.empty())
            panic("Unrolling: netlist '%s' lacks the pc/instr pad "
                  "buses required by the ROM-closed model",
                  nl.name().c_str());
    } else {
        pc_nets_ = resolvePadBus(nl, "pc", kPcBits, false);
    }
}

unsigned
Unrolling::addFrame()
{
    NetlistEncodeOptions opts;
    opts.mode = NetlistEncodeMode::Reference;
    if (!frames_.empty())
        opts.bindQ = &frames_.back().dffD;
    frames_.push_back(encodeNetlist(cnf_, nl_, opts));
    unsigned t = frames_.size() - 1;

    // The tie environment holds on every timestep.
    for (const PadTie &tie : model_.ties) {
        auto it = nl_.primaryInputs().find(tie.input);
        if (it == nl_.primaryInputs().end())
            panic("Unrolling: tie names unknown input '%s'",
                  tie.input.c_str());
        SatLit l = frames_[t].lit(it->second);
        cnf_.assertLit(tie.value ? l : ~l);
    }

    if (model_.program)
        closeRom(t);
    return t;
}

void
Unrolling::ensureFrames(unsigned n)
{
    while (frames_.size() < n)
        addFrame();
}

void
Unrolling::assertInit()
{
    if (frames_.empty())
        panic("Unrolling::assertInit: no frames");
    auto dffs = nl_.dffs();
    for (size_t i = 0; i < dffs.size(); ++i) {
        SatLit q = frames_[0].dffQ[i];
        cnf_.assertLit(dffs[i].init ? q : ~q);
    }
}

CnfBuilder::Word
Unrolling::busLits(unsigned t, const std::vector<NetId> &nets) const
{
    CnfBuilder::Word w;
    w.reserve(nets.size());
    for (NetId n : nets)
        w.push_back(frames_.at(t).lit(n));
    return w;
}

/**
 * Constrain frame @p t's instruction bus to the program image word
 * at the frame's own PC pads — the lockstep harness's fetch,
 * rendered as a mux tree over the 7-bit PC. Out-of-image addresses
 * read the idle bus's zeros, exactly like the scalar and wide-lane
 * drivers' fetch lambdas.
 */
void
Unrolling::closeRom(unsigned t)
{
    const std::vector<uint8_t> &image = model_.program->page(0);
    auto fetch = [&](unsigned addr) -> unsigned {
        return addr < image.size() ? image[addr] : 0;
    };

    unsigned bits = instr_nets_.size();
    std::vector<uint64_t> table(kPageSize, 0);
    for (unsigned pc = 0; pc < kPageSize; ++pc) {
        if (wide_bus_) {
            unsigned base = word_pc_ ? pc * 2 : pc;
            table[pc] = fetch(base) | (fetch(base + 1) << 8);
        } else {
            table[pc] = fetch(pc);
        }
    }

    CnfBuilder::Word pc = busLits(t, pc_nets_);
    std::vector<CnfBuilder::Word> words;
    words.reserve(kPageSize);
    for (unsigned v = 0; v < kPageSize; ++v)
        words.push_back(cnf_.constWord(table[v], bits));
    // Balanced mux tree, LSB select first; constant folding in
    // mkMux collapses the (large) identical-subtree regions of a
    // mostly-zero image.
    for (unsigned level = 0; level < kPcBits; ++level) {
        std::vector<CnfBuilder::Word> next;
        next.reserve(words.size() / 2);
        for (size_t i = 0; i + 1 < words.size(); i += 2)
            next.push_back(
                cnf_.mux(words[i], words[i + 1], pc[level]));
        words = std::move(next);
    }

    CnfBuilder::Word instr = busLits(t, instr_nets_);
    for (unsigned b = 0; b < bits; ++b)
        cnf_.bindEqual(instr[b], words[0][b]);
}

void
Unrolling::assertSimplePath()
{
    size_t ndff = nl_.dffs().size();
    for (unsigned j = simplePathDone_; j < frames_.size(); ++j) {
        for (unsigned i = 0; i < j; ++i) {
            std::vector<SatLit> differs;
            differs.reserve(ndff);
            for (size_t d = 0; d < ndff; ++d)
                differs.push_back(cnf_.mkXor(frames_[i].dffQ[d],
                                             frames_[j].dffQ[d]));
            cnf_.addClause(std::move(differs));
        }
    }
    simplePathDone_ = frames_.size();
}

} // namespace flexi
