/**
 * @file
 * The sequential property catalog and its little spec language.
 *
 * Properties are invariants ("G P" in LTL terms) over a bounded
 * window of consecutive timesteps. The spec grammar, also accepted
 * by `flexilint --prop`:
 *
 *   assert:<net>=<0|1>            named net holds the value in
 *                                 every cycle (user / netlist
 *                                 assertions over labeled state)
 *   bound:<bus>/<width>/<limit>   the named output pad bus stays
 *                                 strictly below <limit>
 *   watchdog[:N]                  once the PC has been stuck for N
 *                                 cycles it stays stuck — the wedge
 *                                 is stable, so a threshold-N PC
 *                                 watchdog trips within N cycles of
 *                                 any hang and never misses one
 *                                 (requires the ROM-closed model)
 *   mmu-page                      the PC never leaves the assembled
 *                                 page-0 image (sugar for a bound
 *                                 derived from the program; requires
 *                                 the ROM-closed model, refuses
 *                                 multi-page programs)
 *   xfree[:K]                     every X-after-reset state bit is
 *                                 re-initialized within K cycles
 *                                 regardless of the power-on state
 *                                 (checked by the dedicated
 *                                 seqResetCoverage() algorithm, not
 *                                 by the BMC/induction engines)
 *
 * docs/FORMAL.md documents the language and the soundness arguments.
 */

#ifndef FLEXI_ANALYSIS_MC_PROPERTY_HH
#define FLEXI_ANALYSIS_MC_PROPERTY_HH

#include <string>
#include <vector>

#include "analysis/mc/unroll.hh"

namespace flexi
{

struct McProperty
{
    enum class Kind
    {
        NetAssert,
        BusBound,
        Watchdog,
        MmuPage,
        XFree,
    };

    Kind kind = Kind::NetAssert;
    /** Normalized spec string; names the property in reports. */
    std::string spec;

    std::string net;       ///< NetAssert
    bool value = false;    ///< NetAssert
    std::string bus;       ///< BusBound
    unsigned width = 0;    ///< BusBound
    uint64_t limit = 0;    ///< BusBound
    unsigned param = 1;    ///< Watchdog N / XFree depth

    /** Consecutive frames one instance of the property spans. */
    unsigned window() const
    {
        return kind == Kind::Watchdog ? param + 2 : 1;
    }
};

/**
 * Parse one spec. Returns false with a one-line reason in @p err
 * (when given) on a malformed spec.
 */
bool parsePropertySpec(const std::string &spec, McProperty &out,
                       std::string *err = nullptr);

/**
 * The default catalog for a model: watchdog and mmu-page when the
 * model is ROM-closed (they are program properties), plus xfree.
 */
std::vector<McProperty> defaultProperties(const McModel &model);

/**
 * Check a property is well-formed against a netlist and model
 * (names resolve, the model is closed when required) and resolve
 * model-derived parameters (mmu-page's limit becomes the page-0
 * fill in PC units). Returns an empty string when valid, else the
 * reason.
 */
std::string validateProperty(const Netlist &nl, const McModel &model,
                             McProperty &p);

/**
 * The literal "property holds at step t". Frames t .. t+window()-1
 * must already exist in @p u.
 */
SatLit propertyLit(CnfBuilder &cnf, const Unrolling &u,
                   const McProperty &p, unsigned t);

/**
 * Concrete (simulation) counterpart of propertyLit: @p pc holds the
 * sampled PC bus per frame, @p bits the sampled assert-net / bound-
 * bus value per frame. Evaluates the property instance at @p t.
 */
bool propertyHoldsConcrete(const McProperty &p,
                           const std::vector<unsigned> &pc,
                           const std::vector<unsigned> &bits,
                           unsigned t);

} // namespace flexi

#endif // FLEXI_ANALYSIS_MC_PROPERTY_HH
