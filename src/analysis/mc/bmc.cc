#include "bmc.hh"

#include "common/logging.hh"

namespace flexi
{

namespace
{

/**
 * Read a full multi-cycle trace out of the solver model: every
 * primary input and every state bit of every frame, by name, in
 * deterministic (map / commit) order.
 */
McTrace
extractTrace(const SatSolver &solver, const Netlist &nl,
             const Unrolling &u, const McProperty &p,
             unsigned violation)
{
    McTrace trace;
    trace.property = p.spec;
    trace.violationStep = violation;
    auto dffs = nl.dffs();
    for (unsigned t = 0; t < u.frames(); ++t) {
        McFrame fr;
        for (const auto &in : nl.primaryInputs())
            fr.inputs.emplace_back(
                in.first,
                solver.modelValue(u.netLit(t, in.second)));
        for (size_t i = 0; i < dffs.size(); ++i)
            fr.state.emplace_back(
                nl.netName(dffs[i].q),
                solver.modelValue(u.stateLit(t, i)));
        trace.frames.push_back(std::move(fr));
    }
    return trace;
}

McResult
invalidProperty(const McProperty &p)
{
    McResult r;
    r.status = McStatus::Invalid;
    r.detail = strfmt("'%s' is not a frame property (xfree runs "
                      "through seqResetCoverage())",
                      p.spec.c_str());
    return r;
}

} // namespace

McResult
checkBmc(const Netlist &nl, const McModel &model, const McProperty &p,
         unsigned depth)
{
    if (p.kind == McProperty::Kind::XFree)
        return invalidProperty(p);

    McResult r;
    SatSolver solver;
    CnfBuilder cnf(solver);
    Unrolling u(cnf, nl, model);
    u.addFrame();
    u.assertInit();

    unsigned w = p.window();
    for (unsigned t = 0; t <= depth; ++t) {
        u.ensureFrames(t + w);
        SatLit pt = propertyLit(cnf, u, p, t);
        ++r.solves;
        if (solver.solve({~pt}) == SatSolver::Result::Sat) {
            r.status = McStatus::Falsified;
            r.depth = t;
            r.trace = extractTrace(solver, nl, u, p, t);
            r.detail = strfmt("'%s' violated %u cycle%s after "
                              "power-on",
                              p.spec.c_str(), t, t == 1 ? "" : "s");
            r.conflicts = solver.stats().conflicts;
            return r;
        }
        // This step is clean for good: harden it so deeper steps
        // solve against the accumulated invariant prefix.
        cnf.assertLit(pt);
    }

    r.status = McStatus::Clean;
    r.depth = depth;
    r.detail = strfmt("'%s' holds for %u cycles after power-on",
                      p.spec.c_str(), depth);
    r.conflicts = solver.stats().conflicts;
    return r;
}

McResult
checkInduction(const Netlist &nl, const McModel &model,
               const McProperty &p, unsigned maxK, bool simplePath)
{
    if (p.kind == McProperty::Kind::XFree)
        return invalidProperty(p);

    McResult r;
    unsigned w = p.window();
    for (unsigned k = 1; k <= maxK; ++k) {
        // Step case on a fresh solver: from any loop-free run of k
        // clean steps (arbitrary start state), step k is clean too.
        SatSolver solver;
        CnfBuilder cnf(solver);
        Unrolling u(cnf, nl, model);
        u.ensureFrames(k + w);
        for (unsigned t = 0; t < k; ++t)
            cnf.assertLit(propertyLit(cnf, u, p, t));
        if (simplePath)
            u.assertSimplePath();
        SatLit pk = propertyLit(cnf, u, p, k);
        ++r.solves;
        bool step =
            solver.solve({~pk}) == SatSolver::Result::Unsat;
        r.conflicts += solver.stats().conflicts;
        if (!step)
            continue;

        // Base case: no violation reachable in the first k steps.
        McResult base = checkBmc(nl, model, p, k - 1);
        r.solves += base.solves;
        r.conflicts += base.conflicts;
        if (base.status == McStatus::Falsified) {
            base.solves = r.solves;
            base.conflicts = r.conflicts;
            return base;
        }
        r.status = McStatus::Proved;
        r.depth = k;
        r.detail = strfmt("'%s' proved by %u-induction%s",
                          p.spec.c_str(), k,
                          simplePath ? " (simple-path)" : "");
        return r;
    }

    r.status = McStatus::Unknown;
    r.depth = maxK;
    r.detail = strfmt("'%s': induction did not close within k=%u",
                      p.spec.c_str(), maxK);
    return r;
}

SeqResetCoverageResult
seqResetCoverage(const Netlist &nl, const McModel &model,
                 unsigned depth)
{
    SeqResetCoverageResult r;
    r.depth = depth;
    if (depth == 0) {
        r.detail = "xfree depth must be at least 1";
        return r;
    }

    SatSolver solver;
    CnfBuilder cnf(solver);
    Unrolling a(cnf, nl, model);
    Unrolling b(cnf, nl, model);
    a.ensureFrames(depth + 1);
    b.ensureFrames(depth + 1);

    // Both copies read the same input sequence; under the ROM-closed
    // model the instr bus is each copy's own fetch (it follows that
    // copy's PC), so it is exactly the non-instr pads that are
    // shared.
    std::vector<uint8_t> own(nl.numNets(), 0);
    if (model.program) {
        IsaKind isa = model.program->isa();
        bool wide = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
        for (NetId n :
             resolvePadBus(nl, "instr", wide ? 16 : 8, true))
            own[n] = 1;
    }
    for (unsigned t = 0; t <= depth; ++t)
        for (const auto &in : nl.primaryInputs())
            if (!own[in.second])
                cnf.bindEqual(a.netLit(t, in.second),
                              b.netLit(t, in.second));

    auto dffs = nl.dffs();
    r.covered.assign(dffs.size(), 0);
    size_t num_covered = 0;
    for (size_t i = 0; i < dffs.size(); ++i) {
        SatLit ne = cnf.mkXor(a.stateLit(depth, i),
                              b.stateLit(depth, i));
        ++r.solves;
        if (solver.solve({ne}) == SatSolver::Result::Unsat) {
            r.covered[i] = 1;
            ++num_covered;
            // Harden the proven convergence: later bits usually
            // depend on earlier ones.
            cnf.assertLit(~ne);
        }
    }

    r.ok = num_covered == dffs.size();
    r.detail = strfmt("%zu/%zu state bits self-initialize within "
                      "%u cycle%s",
                      num_covered, dffs.size(), depth,
                      depth == 1 ? "" : "s");
    return r;
}

} // namespace flexi
