/**
 * @file
 * The sequential model checker as a lint pass.
 *
 * mcLint() runs a property catalog through BMC / k-induction /
 * sequential reset coverage and renders the outcomes as structured
 * diagnostics (rules documented in docs/LINT.md):
 *
 *   prop-proved     Note     k-induction closed (or every state bit
 *                            sequentially covered, for xfree)
 *   prop-bmc-clean  Note     no violation within the BMC bound
 *   prop-cex        Error    concrete multi-cycle counterexample,
 *                            confirmed by simulator replay; the
 *                            rendered trace is part of the message
 *   prop-unknown    Warning  induction did not close within maxK
 *   prop-invalid    Error    malformed spec or inapplicable model
 *   x-after-reset-seq Warning state bits that stay power-on-
 *                            dependent past the xfree window even
 *                            under the sequential (two-copy) model
 *   prop-replay-diverged Error a solver counterexample a simulator
 *                            refuses to reproduce (an encoder bug —
 *                            should never fire)
 */

#ifndef FLEXI_ANALYSIS_MC_MC_LINT_HH
#define FLEXI_ANALYSIS_MC_MC_LINT_HH

#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/mc/bmc.hh"

namespace flexi
{

struct McLintOptions
{
    /** BMC bound (used when induction is off, or as the
     *  falsification fallback when induction returns Unknown). */
    unsigned bmcDepth = 8;
    /** Maximum induction k; 0 disables the induction attempt. */
    unsigned inductDepth = 0;
    /**
     * Property specs (the --prop grammar). Empty runs the default
     * catalog for the model.
     */
    std::vector<std::string> props;
    McModel model;
};

struct McLintOutcome
{
    LintReport report;
    /** Confirmed counterexample traces, for VCD dumping. */
    std::vector<McTrace> traces;
};

McLintOutcome mcLint(const Netlist &nl, const McLintOptions &opts);

} // namespace flexi

#endif // FLEXI_ANALYSIS_MC_MC_LINT_HH
