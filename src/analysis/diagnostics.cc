#include "diagnostics.hh"

#include <algorithm>
#include <tuple>

#include "common/logging.hh"

namespace flexi
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("severityName: bad Severity");
}

void
LintReport::append(const LintReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

void
LintReport::resolveNetNames(const Netlist &nl)
{
    for (auto &d : diags_) {
        if (!d.netNames.empty())
            continue;   // already resolved by the emitting pass
        d.netNames.reserve(d.nets.size());
        for (NetId net : d.nets)
            d.netNames.push_back(nl.netName(net));
    }
}

size_t
LintReport::count(Severity severity) const
{
    size_t n = 0;
    for (const auto &d : diags_)
        if (d.severity == severity)
            ++n;
    return n;
}

void
LintReport::normalize()
{
    auto key = [](const Diagnostic &d) {
        return std::tie(d.rule, d.module, d.page, d.addr, d.nets,
                        d.message);
    };
    std::stable_sort(diags_.begin(), diags_.end(),
                     [&](const Diagnostic &a, const Diagnostic &b) {
                         return key(a) < key(b);
                     });
    auto same = [&](const Diagnostic &a, const Diagnostic &b) {
        return a.severity == b.severity && key(a) == key(b) &&
               a.netNames == b.netNames;
    };
    diags_.erase(std::unique(diags_.begin(), diags_.end(), same),
                 diags_.end());
}

std::vector<Diagnostic>
LintReport::byRule(const std::string &rule) const
{
    std::vector<Diagnostic> out;
    for (const auto &d : diags_)
        if (d.rule == rule)
            out.push_back(d);
    return out;
}

std::string
LintReport::text(const std::string &subject) const
{
    std::string out;
    for (const auto &d : diags_) {
        out += subject + ": " + severityName(d.severity) + "[" +
               d.rule + "]";
        if (!d.module.empty())
            out += " " + d.module;
        if (d.page >= 0)
            out += strfmt(" page %d addr %d", d.page, d.addr);
        out += ": " + d.message + "\n";
    }
    return out;
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
LintReport::json(const std::string &subject) const
{
    std::string out = "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        if (i)
            out += ",";
        out += "\n  {";
        out += "\"subject\": \"" + jsonEscape(subject) + "\", ";
        out += strfmt("\"severity\": \"%s\", ",
                      severityName(d.severity));
        out += "\"rule\": \"" + jsonEscape(d.rule) + "\", ";
        out += "\"module\": \"" + jsonEscape(d.module) + "\", ";
        out += strfmt("\"page\": %d, \"addr\": %d, ", d.page, d.addr);
        out += "\"nets\": [";
        // Prefer the resolved stable names; fall back to "n<id>" for
        // diagnostics that were never resolved against a netlist.
        for (size_t k = 0; k < d.nets.size(); ++k) {
            std::string name = k < d.netNames.size()
                                   ? d.netNames[k]
                                   : strfmt("n%u", d.nets[k]);
            out += (k ? ", " : "");
            out += "\"" + jsonEscape(name) + "\"";
        }
        out += "], ";
        out += "\"message\": \"" + jsonEscape(d.message) + "\"}";
    }
    out += "\n]\n";
    return out;
}

} // namespace flexi
