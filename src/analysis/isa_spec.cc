#include "isa_spec.hh"

#include "common/logging.hh"

namespace flexi
{

namespace
{

using Word = CnfBuilder::Word;

Word
stateWord(const IsaSpecInputs &in, const std::string &prefix,
          unsigned width)
{
    Word w(width);
    for (unsigned i = 0; i < width; ++i) {
        auto it = in.state.find(prefix + std::to_string(i));
        if (it == in.state.end())
            panic("ISA spec: missing state bit '%s%u'",
                  prefix.c_str(), i);
        w[i] = it->second;
    }
    return w;
}

SatLit
stateBit(const IsaSpecInputs &in, const std::string &name)
{
    auto it = in.state.find(name);
    if (it == in.state.end())
        panic("ISA spec: missing state bit '%s'", name.c_str());
    return it->second;
}

void
setWord(IsaSpec &spec, const std::string &prefix, const Word &w)
{
    for (unsigned i = 0; i < w.size(); ++i)
        spec.nextState[prefix + std::to_string(i)] = w[i];
}

/** 2^k : 1 word mux (sel LSB first; words.size() == 1 << k). */
Word
muxN(CnfBuilder &cnf, const std::vector<Word> &words, const Word &sel)
{
    std::vector<Word> layer = words;
    for (SatLit s : sel) {
        std::vector<Word> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(cnf.mux(layer[i], layer[i + 1], s));
        layer = std::move(next);
    }
    return layer[0];
}

Word
increment(CnfBuilder &cnf, const Word &a)
{
    return cnf.add(a, cnf.constWord(0, a.size()), cnf.constTrue());
}

/**
 * Behavioral shifter: an N-way select over all statically shifted
 * copies of @p v (the iterative shift semantics of CoreSim). Returns
 * the shifted word; @p carry_out gets the last bit shifted out (the
 * previous carry for amount 0, where no shift write-back happens).
 */
Word
behavioralShift(CnfBuilder &cnf, const Word &v, const Word &amt,
                SatLit fill, SatLit carry, SatLit *carry_out)
{
    unsigned w = static_cast<unsigned>(v.size());
    Word val = v;
    SatLit car = carry;
    for (unsigned k = 1; k < 8; ++k) {
        Word vk(w);
        for (unsigned j = 0; j < w; ++j)
            vk[j] = j + k < w ? v[j + k] : fill;
        SatLit ck = k - 1 < w ? v[k - 1] : fill;
        SatLit sel = cnf.equalsConst(amt, k);
        val = cnf.mux(val, vk, sel);
        car = cnf.mkMux(car, ck, sel);
    }
    if (carry_out)
        *carry_out = car;
    return val;
}

// ---------------------------------------------------------------
// FlexiCore4 (Section 3.3/3.4): no controller state at all.

IsaSpec
specFc4(CnfBuilder &cnf, const IsaSpecInputs &in)
{
    const Word &instr = in.instr;
    Word acc = stateWord(in, "acc", 4);
    Word pc = stateWord(in, "pc_q", 7);
    Word oport = stateWord(in, "oport_q", 4);
    std::vector<Word> words(8);
    words[0] = in.iport;
    words[1] = oport;
    for (unsigned w = 2; w < 8; ++w)
        words[w] = stateWord(in, "mem" + std::to_string(w) + "_", 4);

    SatLit i7 = instr[7];
    SatLit i6 = instr[6];
    Word addr = {instr[0], instr[1], instr[2]};
    Word rdata = muxN(cnf, words, addr);
    Word imm = {instr[0], instr[1], instr[2], instr[3]};
    Word operand = cnf.mux(rdata, imm, i6);

    SatLit cout;
    Word sum = cnf.add(acc, operand, cnf.constFalse(), &cout);
    Word nand_w(4);
    Word xor_w(4);
    for (unsigned i = 0; i < 4; ++i) {
        nand_w[i] = cnf.mkNand(acc[i], operand[i]);
        xor_w[i] = cnf.mkXor(acc[i], operand[i]);
    }
    // ALU select (instr[5:4]): 00 add, 01 nand, 10 xor, 11 pass.
    Word alu = cnf.mux(cnf.mux(sum, nand_w, instr[4]),
                       cnf.mux(xor_w, operand, instr[4]), instr[5]);

    SatLit tform = cnf.mkAndN({~i7, ~i6, instr[5], instr[4]});
    SatLit store = cnf.mkAnd(tform, instr[3]);
    SatLit acc_we = cnf.mkAnd(~i7, ~store);
    SatLit taken = cnf.mkAnd(i7, acc[3]);

    IsaSpec spec;
    setWord(spec, "acc", cnf.mux(acc, alu, acc_we));
    setWord(spec, "oport_q",
            cnf.mux(oport, acc,
                    cnf.mkAnd(cnf.equalsConst(addr, 1), store)));
    for (unsigned w = 2; w < 8; ++w)
        setWord(spec, "mem" + std::to_string(w) + "_",
                cnf.mux(words[w], acc,
                        cnf.mkAnd(cnf.equalsConst(addr, w), store)));
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    setWord(spec, "pc_q", cnf.mux(increment(cnf, pc), target, taken));

    spec.classes = {
        {"br", {{7, true}}, {}},
        {"add", {{7, false}, {6, false}, {5, false}, {4, false}}, {}},
        {"nand", {{7, false}, {6, false}, {5, false}, {4, true}}, {}},
        {"xor", {{7, false}, {6, false}, {5, true}, {4, false}}, {}},
        {"load",
         {{7, false}, {6, false}, {5, true}, {4, true}, {3, false}},
         {}},
        {"store",
         {{7, false}, {6, false}, {5, true}, {4, true}, {3, true}},
         {}},
        {"addi", {{7, false}, {6, true}, {5, false}, {4, false}}, {}},
        {"nandi", {{7, false}, {6, true}, {5, false}, {4, true}}, {}},
        {"xori", {{7, false}, {6, true}, {5, true}, {4, false}}, {}},
        {"li", {{7, false}, {6, true}, {5, true}, {4, true}}, {}},
        {"*", {}, {}},
    };
    return spec;
}

// ---------------------------------------------------------------
// FlexiCore8: FlexiCore4 widened, plus the LOAD BYTE flag.

IsaSpec
specFc8(CnfBuilder &cnf, const IsaSpecInputs &in)
{
    const Word &instr = in.instr;
    Word acc = stateWord(in, "acc", 8);
    Word pc = stateWord(in, "pc_q", 7);
    Word oport = stateWord(in, "oport_q", 8);
    SatLit flag = stateBit(in, "ldb_flag");
    std::vector<Word> words(4);
    words[0] = in.iport;
    words[1] = oport;
    words[2] = stateWord(in, "mem2_", 8);
    words[3] = stateWord(in, "mem3_", 8);

    SatLit i7 = instr[7];
    SatLit i6 = instr[6];
    SatLit prefix = cnf.equalsConst(instr, 0x08);
    SatLit squash = cnf.mkOr(flag, prefix);

    Word addr = {instr[0], instr[1]};
    Word rdata = muxN(cnf, words, addr);
    // Sign-extended 4-bit immediate.
    Word imm = {instr[0], instr[1], instr[2], instr[3],
                instr[3], instr[3], instr[3], instr[3]};
    Word operand = cnf.mux(rdata, imm, i6);

    SatLit cout;
    Word sum = cnf.add(acc, operand, cnf.constFalse(), &cout);
    Word nand_w(8);
    Word xor_w(8);
    for (unsigned i = 0; i < 8; ++i) {
        nand_w[i] = cnf.mkNand(acc[i], operand[i]);
        xor_w[i] = cnf.mkXor(acc[i], operand[i]);
    }
    Word alu = cnf.mux(cnf.mux(sum, nand_w, instr[4]),
                       cnf.mux(xor_w, operand, instr[4]), instr[5]);

    SatLit tform = cnf.mkAndN({~i7, ~i6, instr[5], instr[4]});
    SatLit store = cnf.mkAndN({tform, instr[3], ~squash});
    SatLit acc_alu_we = cnf.mkAndN({~i7, ~store, ~squash});
    SatLit acc_we = cnf.mkOr(acc_alu_we, flag);
    // The data cycle captures the raw instruction byte.
    Word acc_in = cnf.mux(alu, instr, flag);
    SatLit taken = cnf.mkAndN({i7, acc[7], ~squash});

    IsaSpec spec;
    setWord(spec, "acc", cnf.mux(acc, acc_in, acc_we));
    setWord(spec, "oport_q",
            cnf.mux(oport, acc,
                    cnf.mkAnd(cnf.equalsConst(addr, 1), store)));
    for (unsigned w = 2; w < 4; ++w)
        setWord(spec, "mem" + std::to_string(w) + "_",
                cnf.mux(words[w], acc,
                        cnf.mkAnd(cnf.equalsConst(addr, w), store)));
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    setWord(spec, "pc_q", cnf.mux(increment(cnf, pc), target, taken));
    spec.nextState["ldb_flag"] = cnf.mkAnd(prefix, ~flag);

    // The FlexiCore4 classes, each on a normal (flag clear) cycle,
    // plus the two LOAD BYTE cycles.
    IsaSpec fc4_shape;   // reuse the class table layout
    spec.classes = {
        {"br", {{7, true}}, {{"ldb_flag", false}}},
        {"add", {{7, false}, {6, false}, {5, false}, {4, false}},
         {{"ldb_flag", false}}},
        {"nand", {{7, false}, {6, false}, {5, false}, {4, true}},
         {{"ldb_flag", false}}},
        {"xor", {{7, false}, {6, false}, {5, true}, {4, false}},
         {{"ldb_flag", false}}},
        {"load",
         {{7, false}, {6, false}, {5, true}, {4, true}, {3, false}},
         {{"ldb_flag", false}}},
        {"store",
         {{7, false}, {6, false}, {5, true}, {4, true}, {3, true}},
         {{"ldb_flag", false}}},
        {"addi", {{7, false}, {6, true}, {5, false}, {4, false}},
         {{"ldb_flag", false}}},
        {"nandi", {{7, false}, {6, true}, {5, false}, {4, true}},
         {{"ldb_flag", false}}},
        {"xori", {{7, false}, {6, true}, {5, true}, {4, false}},
         {{"ldb_flag", false}}},
        {"li", {{7, false}, {6, true}, {5, true}, {4, true}},
         {{"ldb_flag", false}}},
        {"ldb-prefix",
         {{7, false}, {6, false}, {5, false}, {4, false}, {3, true},
          {2, false}, {1, false}, {0, false}},
         {{"ldb_flag", false}}},
        {"ldb-data", {}, {{"ldb_flag", true}}},
        {"*", {}, {}},
    };
    (void)fc4_shape;
    return spec;
}

// ---------------------------------------------------------------
// ExtAcc4: the Section 6.1 revised accumulator op set.

IsaSpec
specExtAcc4(CnfBuilder &cnf, const IsaSpecInputs &in)
{
    const Word &instr = in.instr;
    Word acc = stateWord(in, "acc", 4);
    Word pc = stateWord(in, "pc_q", 7);
    Word oport = stateWord(in, "oport_q", 4);
    Word ret = stateWord(in, "ret_q", 7);
    SatLit carry = stateBit(in, "carry");
    std::vector<Word> words(8);
    words[0] = in.iport;
    words[1] = oport;
    for (unsigned w = 2; w < 8; ++w)
        words[w] = stateWord(in, "mem" + std::to_string(w) + "_", 4);

    SatLit i7 = instr[7];
    SatLit i6 = instr[6];
    SatLit i5 = instr[5];
    SatLit i4 = instr[4];
    SatLit i3 = instr[3];
    SatLit is_m = cnf.mkAnd(~i7, ~i6);
    SatLit is_i = cnf.mkAnd(~i7, i6);
    SatLit is_t = cnf.mkAnd(i7, ~i6);
    SatLit is_bc = cnf.mkAnd(i7, i6);
    SatLit is_br = cnf.mkAnd(is_bc, ~i5);
    SatLit is_call = cnf.mkAnd(is_bc, i5);

    Word sss = {instr[3], instr[4], instr[5]};
    auto mop = [&](unsigned k) {
        return cnf.mkAnd(is_m, cnf.equalsConst(sss, k));
    };
    auto iop = [&](unsigned k) {
        return cnf.mkAnd(is_i, cnf.equalsConst(sss, k));
    };
    auto top = [&](unsigned k) {
        return cnf.mkAnd(is_t, cnf.equalsConst(sss, k));
    };

    SatLit t_load = top(0);
    SatLit t_store = top(1);
    SatLit t_neg = top(2);
    SatLit t_ret = top(3);
    SatLit t_asr = top(4);
    SatLit t_lsr = top(5);
    SatLit i_asr = iop(5);
    SatLit i_lsr = iop(6);
    SatLit i_li = iop(7);
    SatLit m_xch = mop(7);
    SatLit m_arith = cnf.mkAnd(is_m, ~i5);
    SatLit i_addadc = cnf.mkAndN({is_i, ~i5, ~i4});
    SatLit arith = cnf.mkOr(m_arith, i_addadc);
    SatLit m_sub_swb = cnf.mkAndN({is_m, ~i5, i4});
    SatLit use_cin = cnf.mkAnd(arith, i3);
    SatLit force_cin =
        cnf.mkOr(cnf.mkAnd(m_sub_swb, ~i3), t_neg);
    SatLit invert_b = cnf.mkOr(m_sub_swb, t_neg);
    SatLit is_shift =
        cnf.mkOrN({i_asr, i_lsr, t_asr, t_lsr});
    SatLit shift_arith = cnf.mkOr(i_asr, t_asr);
    SatLit is_and = cnf.mkOr(mop(4), iop(2));
    SatLit is_or = cnf.mkOr(mop(5), iop(3));
    SatLit is_xor = cnf.mkOr(mop(6), iop(4));
    SatLit is_pass = cnf.mkOrN({m_xch, i_li, t_load});

    Word addr = {instr[0], instr[1], instr[2]};
    Word rdata = muxN(cnf, words, addr);
    SatLit imm_hi = cnf.mkAnd(instr[2], i_addadc);   // sign extend
    Word imm = {instr[0], instr[1], instr[2], imm_hi};
    Word operand = cnf.mux(rdata, imm, is_i);

    // Adder: x = acc (0 for neg), y = operand (acc for neg),
    // optionally inverted; carry-in forced for sub/neg.
    Word zero4 = cnf.constWord(0, 4);
    Word x = cnf.mux(acc, zero4, t_neg);
    Word y_src = cnf.mux(operand, acc, t_neg);
    Word y(4);
    for (unsigned i = 0; i < 4; ++i)
        y[i] = cnf.mkMux(y_src[i], ~y_src[i], invert_b);
    SatLit cin =
        cnf.mkMux(cnf.mkAnd(use_cin, carry), cnf.constTrue(),
                  force_cin);
    SatLit cout;
    Word sum = cnf.add(x, y, cin, &cout);

    Word and_w(4);
    Word or_w(4);
    Word xor_w(4);
    for (unsigned i = 0; i < 4; ++i) {
        and_w[i] = cnf.mkAnd(acc[i], operand[i]);
        or_w[i] = cnf.mkOr(acc[i], operand[i]);
        xor_w[i] = cnf.mkXor(acc[i], operand[i]);
    }

    // Shift amount: 1 for T-form, instr[2:0] for I-form.
    Word amt = {cnf.mkMux(instr[0], cnf.constTrue(), is_t),
                cnf.mkAnd(instr[1], is_i),
                cnf.mkAnd(instr[2], is_i)};
    SatLit fill = cnf.mkAnd(shift_arith, acc[3]);
    SatLit sh_c;
    Word shift_w = behavioralShift(cnf, acc, amt, fill, carry, &sh_c);

    // Result: priority chain over the one-hot op groups.
    Word res = sum;
    res = cnf.mux(res, and_w, is_and);
    res = cnf.mux(res, or_w, is_or);
    res = cnf.mux(res, xor_w, is_xor);
    res = cnf.mux(res, shift_w, is_shift);
    res = cnf.mux(res, operand, is_pass);

    SatLit acc_we =
        cnf.mkOrN({is_m, is_i, t_load, t_neg, t_asr, t_lsr});
    SatLit mem_we = cnf.mkOr(m_xch, t_store);
    SatLit amt_nz = cnf.mkOrN({amt[0], amt[1], amt[2]});
    SatLit carry_we = cnf.mkOrN(
        {arith, t_neg, cnf.mkAnd(is_shift, amt_nz)});
    SatLit carry_next = cnf.mkMux(cout, sh_c, is_shift);

    IsaSpec spec;
    setWord(spec, "acc", cnf.mux(acc, res, acc_we));
    spec.nextState["carry"] =
        cnf.mkMux(carry, carry_next, carry_we);
    setWord(spec, "oport_q",
            cnf.mux(oport, acc,
                    cnf.mkAnd(cnf.equalsConst(addr, 1), mem_we)));
    for (unsigned w = 2; w < 8; ++w)
        setWord(spec, "mem" + std::to_string(w) + "_",
                cnf.mux(words[w], acc,
                        cnf.mkAnd(cnf.equalsConst(addr, w), mem_we)));

    // Branch / call / ret.
    SatLit n_flag = acc[3];
    SatLit z_flag = cnf.norReduce(acc);
    SatLit p_flag = cnf.mkAnd(~n_flag, ~z_flag);
    SatLit cond = cnf.mkOrN({cnf.mkAnd(instr[4], n_flag),
                             cnf.mkAnd(instr[3], z_flag),
                             cnf.mkAnd(instr[2], p_flag)});
    SatLit redirect = cnf.mkOr(cnf.mkAnd(is_br, cond), is_call);
    Word inc1 = increment(cnf, pc);
    Word inc2 = increment(cnf, inc1);
    Word inc = cnf.mux(inc1, inc2, is_bc);
    Word target = {instr[8], instr[9], instr[10], instr[11],
                   instr[12], instr[13], instr[14]};
    Word pc_seq = cnf.mux(inc, target, redirect);
    setWord(spec, "pc_q", cnf.mux(pc_seq, ret, t_ret));
    setWord(spec, "ret_q", cnf.mux(ret, inc2, is_call));

    auto cls = [&](const char *name, bool b7, bool b6,
                   unsigned k) -> InstrClass {
        return {name,
                {{7, b7}, {6, b6}, {3, (k & 1) != 0},
                 {4, (k & 2) != 0}, {5, (k & 4) != 0}},
                {}};
    };
    spec.classes = {
        cls("add", false, false, 0), cls("adc", false, false, 1),
        cls("sub", false, false, 2), cls("swb", false, false, 3),
        cls("and", false, false, 4), cls("or", false, false, 5),
        cls("xor", false, false, 6), cls("xch", false, false, 7),
        cls("addi", false, true, 0), cls("adci", false, true, 1),
        cls("andi", false, true, 2), cls("ori", false, true, 3),
        cls("xori", false, true, 4), cls("asri", false, true, 5),
        cls("lsri", false, true, 6), cls("li", false, true, 7),
        cls("load", true, false, 0), cls("store", true, false, 1),
        cls("neg", true, false, 2), cls("ret", true, false, 3),
        cls("asr", true, false, 4), cls("lsr", true, false, 5),
        cls("t-invalid6", true, false, 6),
        cls("t-invalid7", true, false, 7),
        {"br", {{7, true}, {6, true}, {5, false}}, {}},
        {"call", {{7, true}, {6, true}, {5, true}}, {}},
        {"*", {}, {}},
    };
    return spec;
}

// ---------------------------------------------------------------
// LoadStore4: the Section 6.2 two-address machine.

/** op5 encodings (mirrors encoding_ls.cc). */
enum : unsigned
{
    LS_ADD = 0, LS_ADC, LS_SUB, LS_SWB, LS_AND, LS_OR, LS_XOR,
    LS_MOV, LS_NEG, LS_ASR, LS_LSR,
    LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI, LS_MOVI,
    LS_ASRI, LS_LSRI,
    LS_BR, LS_CALL, LS_RET,
};

IsaSpec
specLoadStore4(CnfBuilder &cnf, const IsaSpecInputs &in)
{
    const Word &instr = in.instr;
    Word pc = stateWord(in, "pc_q", 7);
    Word flags = stateWord(in, "flags", 4);
    Word ret = stateWord(in, "ret_q", 7);
    Word oport = stateWord(in, "oport_q", 4);
    SatLit carry = stateBit(in, "carry");
    std::vector<Word> words(8);
    words[0] = in.iport;
    words[1] = oport;
    for (unsigned w = 2; w < 8; ++w)
        words[w] = stateWord(in, "mem" + std::to_string(w) + "_", 4);

    Word op5 = {instr[11], instr[12], instr[13], instr[14],
                instr[15]};
    auto hot = [&](unsigned k) { return cnf.equalsConst(op5, k); };
    auto any = [&](std::initializer_list<unsigned> ops) {
        std::vector<SatLit> lits;
        for (unsigned o : ops)
            lits.push_back(hot(o));
        return cnf.mkOrN(lits);
    };

    SatLit is_imm = any({LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI,
                         LS_MOVI, LS_ASRI, LS_LSRI});
    SatLit is_arith = any({LS_ADD, LS_ADC, LS_SUB, LS_SWB, LS_ADDI,
                           LS_ADCI});
    SatLit use_cin = any({LS_ADC, LS_ADCI, LS_SWB});
    SatLit is_sub_swb = any({LS_SUB, LS_SWB});
    SatLit is_neg = hot(LS_NEG);
    SatLit is_and = any({LS_AND, LS_ANDI});
    SatLit is_or = any({LS_OR, LS_ORI});
    SatLit is_xor = any({LS_XOR, LS_XORI});
    SatLit is_mov = any({LS_MOV, LS_MOVI});
    SatLit is_shift = any({LS_ASR, LS_LSR, LS_ASRI, LS_LSRI});
    SatLit shift_arith = any({LS_ASR, LS_ASRI});
    SatLit is_br = hot(LS_BR);
    SatLit is_call = hot(LS_CALL);
    SatLit is_ret = hot(LS_RET);
    SatLit rd_we = any({LS_ADD, LS_ADC, LS_SUB, LS_SWB, LS_AND,
                        LS_OR, LS_XOR, LS_MOV, LS_NEG, LS_ASR,
                        LS_LSR, LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI,
                        LS_XORI, LS_MOVI, LS_ASRI, LS_LSRI});

    Word rd_addr = {instr[8], instr[9], instr[10]};
    Word rs_addr = {instr[5], instr[6], instr[7]};
    Word rd_val = muxN(cnf, words, rd_addr);
    Word rs_val = muxN(cnf, words, rs_addr);
    Word imm = {instr[1], instr[2], instr[3], instr[4]};
    Word b_op = cnf.mux(rs_val, imm, is_imm);

    Word zero4 = cnf.constWord(0, 4);
    Word x = cnf.mux(rd_val, zero4, is_neg);
    Word y_src = cnf.mux(b_op, rd_val, is_neg);
    SatLit invert = cnf.mkOr(is_sub_swb, is_neg);
    Word y(4);
    for (unsigned i = 0; i < 4; ++i)
        y[i] = cnf.mkMux(y_src[i], ~y_src[i], invert);
    SatLit force_cin = cnf.mkOr(hot(LS_SUB), is_neg);
    SatLit cin = cnf.mkMux(cnf.mkAnd(use_cin, carry),
                           cnf.constTrue(), force_cin);
    SatLit cout;
    Word sum = cnf.add(x, y, cin, &cout);

    Word and_w(4);
    Word or_w(4);
    Word xor_w(4);
    for (unsigned i = 0; i < 4; ++i) {
        and_w[i] = cnf.mkAnd(rd_val[i], b_op[i]);
        or_w[i] = cnf.mkOr(rd_val[i], b_op[i]);
        xor_w[i] = cnf.mkXor(rd_val[i], b_op[i]);
    }

    Word amt_src = cnf.mux(rs_val, imm, is_imm);
    Word amt = {amt_src[0], amt_src[1], amt_src[2]};
    SatLit fill = cnf.mkAnd(shift_arith, rd_val[3]);
    SatLit sh_c;
    Word shift_w =
        behavioralShift(cnf, rd_val, amt, fill, carry, &sh_c);

    Word res = sum;
    res = cnf.mux(res, and_w, is_and);
    res = cnf.mux(res, or_w, is_or);
    res = cnf.mux(res, xor_w, is_xor);
    res = cnf.mux(res, shift_w, is_shift);
    res = cnf.mux(res, b_op, is_mov);

    SatLit amt_nz = cnf.mkOrN({amt[0], amt[1], amt[2]});
    SatLit carry_we = cnf.mkOrN(
        {is_arith, is_neg, cnf.mkAnd(is_shift, amt_nz)});
    SatLit carry_next = cnf.mkMux(cout, sh_c, is_shift);

    IsaSpec spec;
    spec.nextState["carry"] =
        cnf.mkMux(carry, carry_next, carry_we);
    setWord(spec, "flags", cnf.mux(flags, res, rd_we));
    setWord(spec, "oport_q",
            cnf.mux(oport, res,
                    cnf.mkAnd(cnf.equalsConst(rd_addr, 1), rd_we)));
    for (unsigned w = 2; w < 8; ++w)
        setWord(spec, "mem" + std::to_string(w) + "_",
                cnf.mux(words[w], res,
                        cnf.mkAnd(cnf.equalsConst(rd_addr, w),
                                  rd_we)));

    SatLit n_flag = flags[3];
    SatLit z_flag = cnf.norReduce(flags);
    SatLit p_flag = cnf.mkAnd(~n_flag, ~z_flag);
    SatLit cond = cnf.mkOrN({cnf.mkAnd(instr[10], n_flag),
                             cnf.mkAnd(instr[9], z_flag),
                             cnf.mkAnd(instr[8], p_flag)});
    SatLit redirect = cnf.mkOr(cnf.mkAnd(is_br, cond), is_call);
    Word inc = increment(cnf, pc);
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    Word pc_seq = cnf.mux(inc, target, redirect);
    setWord(spec, "pc_q", cnf.mux(pc_seq, ret, is_ret));
    setWord(spec, "ret_q", cnf.mux(ret, inc, is_call));

    auto cls = [&](const char *name, unsigned op) -> InstrClass {
        InstrClass c;
        c.name = name;
        for (unsigned b = 0; b < 5; ++b)
            c.instrBits.emplace_back(11 + b, (op >> b) & 1u);
        return c;
    };
    spec.classes = {
        cls("add", LS_ADD), cls("adc", LS_ADC), cls("sub", LS_SUB),
        cls("swb", LS_SWB), cls("and", LS_AND), cls("or", LS_OR),
        cls("xor", LS_XOR), cls("mov", LS_MOV), cls("neg", LS_NEG),
        cls("asr", LS_ASR), cls("lsr", LS_LSR),
        cls("addi", LS_ADDI), cls("adci", LS_ADCI),
        cls("andi", LS_ANDI), cls("ori", LS_ORI),
        cls("xori", LS_XORI), cls("movi", LS_MOVI),
        cls("asri", LS_ASRI), cls("lsri", LS_LSRI),
        cls("br", LS_BR), cls("call", LS_CALL), cls("ret", LS_RET),
        {"*", {}, {}},
    };
    return spec;
}

} // namespace

unsigned
isaInstrWidth(IsaKind kind)
{
    switch (kind) {
      case IsaKind::FlexiCore4:
      case IsaKind::FlexiCore8:
        return 8;
      case IsaKind::ExtAcc4:
      case IsaKind::LoadStore4:
        return 16;
    }
    panic("isaInstrWidth: bad IsaKind");
}

IsaSpec
buildIsaSpec(CnfBuilder &cnf, IsaKind kind, const IsaSpecInputs &in)
{
    switch (kind) {
      case IsaKind::FlexiCore4: return specFc4(cnf, in);
      case IsaKind::FlexiCore8: return specFc8(cnf, in);
      case IsaKind::ExtAcc4: return specExtAcc4(cnf, in);
      case IsaKind::LoadStore4: return specLoadStore4(cnf, in);
    }
    panic("buildIsaSpec: bad IsaKind");
}

} // namespace flexi
