/**
 * @file
 * Tseitin CNF construction over elaborated netlists.
 *
 * CnfBuilder is a thin circuit-construction layer on top of the SAT
 * solver: fresh literals, constant literals, standard gates with
 * constant folding, and little-endian word helpers (ripple adders,
 * muxes) used by the behavioral ISA specifications.
 *
 * encodeNetlist() turns a netlist into CNF in one of three
 * deliberately independent ways:
 *
 *  - Reference: clauses derived from each CellInst's gate semantics
 *    (NAND2 becomes the three NAND clauses, and so on) — the same
 *    semantics evaluateReference() interprets;
 *  - Plan: clauses derived from the compiled evaluation plan's 8-bit
 *    truth tables and padded input slots — the artifact evaluate()
 *    executes;
 *  - WordPlan: clauses derived by walking the fused-run program
 *    (Netlist::planRuns()) with each step encoded from its WordOp's
 *    gate semantics — the exact straight-line program the wide-lane
 *    compiled backend (LaneGroup/LaneBatch) dispatches.
 *
 * A miter between encodings (shared primary-input and DFF-Q
 * variables) therefore proves the compiled plan — and the fused
 * word-op dispatch program — bit-equal to the reference interpreter
 * for every cell cone.
 */

#ifndef FLEXI_ANALYSIS_CNF_ENCODER_HH
#define FLEXI_ANALYSIS_CNF_ENCODER_HH

#include <cstdint>
#include <vector>

#include "analysis/sat.hh"
#include "netlist/netlist.hh"

namespace flexi
{

class CnfBuilder
{
  public:
    /** A little-endian vector of literals. */
    using Word = std::vector<SatLit>;

    explicit CnfBuilder(SatSolver &solver) : solver_(solver) {}

    SatSolver &solver() { return solver_; }

    SatLit fresh();
    SatLit constTrue();
    SatLit constFalse() { return ~constTrue(); }
    SatLit constant(bool b) { return b ? constTrue() : constFalse(); }
    bool isConstTrue(SatLit l);
    bool isConstFalse(SatLit l);

    void addClause(std::vector<SatLit> lits);
    void assertLit(SatLit l) { addClause({l}); }

    /** Gates (with constant folding). */
    SatLit mkAnd(SatLit a, SatLit b);
    SatLit mkOr(SatLit a, SatLit b);
    SatLit mkNand(SatLit a, SatLit b) { return ~mkAnd(a, b); }
    SatLit mkNor(SatLit a, SatLit b) { return ~mkOr(a, b); }
    SatLit mkXor(SatLit a, SatLit b);
    SatLit mkXnor(SatLit a, SatLit b) { return ~mkXor(a, b); }
    /** sel ? b : a (matching the MUX2 cell's input order a, b, sel). */
    SatLit mkMux(SatLit a, SatLit b, SatLit sel);
    SatLit mkAndN(const std::vector<SatLit> &lits);
    SatLit mkOrN(const std::vector<SatLit> &lits);

    /** @name Word helpers (LSB first) */
    ///@{
    Word freshWord(unsigned width);
    Word constWord(uint64_t value, unsigned width);
    /** Ripple-carry a + b + cin; optionally yields the carry out. */
    Word add(const Word &a, const Word &b, SatLit cin,
             SatLit *cout = nullptr);
    Word mux(const Word &a, const Word &b, SatLit sel);
    Word invert(const Word &a);
    SatLit equalsConst(const Word &w, uint64_t value);
    /** Unsigned w < value (the sequential checker's bound props). */
    SatLit lessThanConst(const Word &w, uint64_t value);
    /** Bitwise equality of two same-width words. */
    SatLit equalWords(const Word &a, const Word &b);
    /** Constrain two literals equal (two binary clauses). */
    void bindEqual(SatLit a, SatLit b);
    SatLit orReduce(const Word &w);
    SatLit norReduce(const Word &w) { return ~orReduce(w); }
    ///@}

    /** Read a word back from the solver model (after Sat). */
    uint64_t modelWord(const Word &w) const;

  private:
    SatSolver &solver_;
    SatLit const_;   ///< lazily created root-asserted true literal
    bool haveConst_ = false;
};

/**
 * One netlist rendered to CNF: a literal per net plus the DFF D/Q
 * literals in DFF commit order. dffD holds the *effective* captured
 * value (a fault forcing a Q net overrides the D cone, exactly as
 * clockEdge() does).
 */
struct NetlistEncoding
{
    std::vector<SatLit> net;   ///< per NetId; invalid if unused
    std::vector<SatLit> dffD;
    std::vector<SatLit> dffQ;

    bool hasLit(NetId n) const
    {
        return n < net.size() && net[n].code >= 0;
    }
    SatLit lit(NetId n) const { return net[n]; }
};

enum class NetlistEncodeMode { Reference, Plan, WordPlan };

struct NetlistEncodeOptions
{
    NetlistEncodeMode mode = NetlistEncodeMode::Reference;
    /** Honor the instance's injected stuck-at faults. */
    bool applyFaults = false;
    /**
     * Share primary-input variables (matched by input name against
     * @p shareWith) and DFF state variables (matched by DFF commit
     * order) with a previous encoding, making the two encodings two
     * halves of a miter.
     */
    const NetlistEncoding *share = nullptr;
    const Netlist *shareWith = nullptr;
    /**
     * Bind every DFF Q literal (commit order) to the given literal
     * instead of a fresh variable. The sequential unroller stitches
     * timestep t+1 to timestep t by binding the new frame's Q nets
     * to the previous frame's effective dffD literals. Mutually
     * exclusive with `share`.
     */
    const std::vector<SatLit> *bindQ = nullptr;
};

NetlistEncoding encodeNetlist(CnfBuilder &cnf, const Netlist &nl,
                              const NetlistEncodeOptions &opts = {});

} // namespace flexi

#endif // FLEXI_ANALYSIS_CNF_ENCODER_HH
