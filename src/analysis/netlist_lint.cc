#include "netlist_lint.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

std::string
cellDesc(const Netlist &nl, size_t i)
{
    const CellInst &cell = nl.cells()[i];
    return strfmt("%s #%zu @%s (%s)", cellInfo(cell.type).name, i,
                  cell.module.c_str(),
                  nl.netName(cell.output).c_str());
}

/** Number of meaningful inputs (the DFF clock slot is implicit). */
size_t
realInputs(const CellInst &cell)
{
    return isSequential(cell.type) ? 1 : cell.inputs.size();
}

void
checkConnectivity(const Netlist &nl, LintReport &rep)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    std::vector<std::vector<size_t>> drivers(num_nets);
    for (size_t i = 0; i < cells.size(); ++i) {
        NetId out = cells[i].output;
        if (out != kNoNet && out < num_nets)
            drivers[out].push_back(i);
    }

    for (size_t i = 0; i < cells.size(); ++i) {
        for (size_t k = 0; k < realInputs(cells[i]); ++k) {
            if (cells[i].inputs[k] == kNoNet) {
                rep.add({Severity::Error, "unconnected-input",
                         cells[i].module, {},
                         -1, -1,
                         strfmt("input %zu of %s is unconnected", k,
                                cellDesc(nl, i).c_str())});
            }
        }
    }

    // A cell output shorted onto another driver, a primary input,
    // or a constant rail.
    for (NetId net = 0; net < num_nets; ++net) {
        bool is_const = net == nl.zero() || net == nl.one();
        bool is_input = false;
        for (const auto &[name, n] : nl.primaryInputs())
            is_input |= n == net;
        size_t total = drivers[net].size() +
                       (is_const ? 1 : 0) + (is_input ? 1 : 0);
        if (total <= 1)
            continue;
        std::string who;
        for (size_t i : drivers[net])
            who += (who.empty() ? "" : ", ") + cellDesc(nl, i);
        if (is_input)
            who += ", primary input";
        if (is_const)
            who += ", constant rail";
        rep.add({Severity::Error, "multiple-drivers",
                 drivers[net].empty()
                     ? std::string()
                     : cells[drivers[net].front()].module,
                 {net}, -1, -1,
                 strfmt("net %s has %zu drivers: %s",
                        nl.netName(net).c_str(), total, who.c_str())});
    }

    for (NetId net : nl.undrivenNets()) {
        std::string consumers;
        std::string module;
        for (size_t i = 0; i < cells.size(); ++i) {
            for (size_t k = 0; k < realInputs(cells[i]); ++k) {
                if (cells[i].inputs[k] != net)
                    continue;
                consumers += (consumers.empty() ? "" : ", ") +
                             cellDesc(nl, i);
                if (module.empty())
                    module = cells[i].module;
            }
        }
        for (const auto &[name, n] : nl.primaryOutputs())
            if (n == net)
                consumers += (consumers.empty() ? "" : ", ") +
                             ("output '" + name + "'");
        rep.add({Severity::Error, "undriven-net", module, {net},
                 -1, -1,
                 strfmt("net %s is consumed by %s but never driven",
                        nl.netName(net).c_str(), consumers.c_str())});
    }
}

void
checkCombLoop(const Netlist &nl, LintReport &rep)
{
    std::vector<size_t> cycle = nl.findCombCycle();
    if (cycle.empty())
        return;
    std::string path;
    std::vector<NetId> nets;
    for (size_t i : cycle) {
        path += cellDesc(nl, i) + " -> ";
        nets.push_back(nl.cells()[i].output);
    }
    path += cellDesc(nl, cycle.front());
    rep.add({Severity::Error, "comb-loop",
             nl.cells()[cycle.front()].module, nets, -1, -1,
             "combinational loop: " + path});
}

void
checkFanout(const Netlist &nl, LintReport &rep)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    std::vector<unsigned> loads(num_nets, 0);
    for (const auto &cell : cells)
        for (size_t k = 0; k < realInputs(cell); ++k)
            if (cell.inputs[k] != kNoNet &&
                cell.inputs[k] < num_nets)
                ++loads[cell.inputs[k]];
    // Each primary output is one pad load on its net.
    for (const auto &[name, net] : nl.primaryOutputs())
        if (net < num_nets)
            ++loads[net];

    std::vector<int64_t> driver(num_nets, -1);
    for (size_t i = 0; i < cells.size(); ++i)
        if (cells[i].output < num_nets)
            driver[cells[i].output] = static_cast<int64_t>(i);

    for (NetId net = 0; net < num_nets; ++net) {
        if (net == nl.zero() || net == nl.one())
            continue;   // tie rails, not a single cell's pull-up
        unsigned limit = 0;
        std::string module;
        std::string drv;
        if (driver[net] >= 0) {
            auto i = static_cast<size_t>(driver[net]);
            limit = cellInfo(cells[i].type).maxFanout;
            module = cells[i].module;
            drv = cellDesc(nl, i);
        } else {
            bool is_input = false;
            for (const auto &[name, n] : nl.primaryInputs())
                is_input |= n == net;
            if (!is_input)
                continue;   // undriven net: reported elsewhere
            limit = kPadMaxFanout;
            drv = "input pad '" + nl.netName(net) + "'";
        }
        if (loads[net] > limit)
            rep.add({Severity::Error, "fanout-limit", module, {net},
                     -1, -1,
                     strfmt("%s drives %u loads, limit %u",
                            drv.c_str(), loads[net], limit)});
    }
}

void
checkDeadLogic(const Netlist &nl, LintReport &rep)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    std::vector<std::vector<size_t>> drivers(num_nets);
    for (size_t i = 0; i < cells.size(); ++i)
        if (cells[i].output < num_nets)
            drivers[cells[i].output].push_back(i);

    // Backward closure from the primary outputs: a cell is live iff
    // its output (transitively) reaches a primary output. DFFs
    // propagate liveness from Q to D.
    std::vector<bool> live_net(num_nets, false);
    std::vector<bool> live_cell(cells.size(), false);
    std::deque<NetId> work;
    for (const auto &[name, net] : nl.primaryOutputs()) {
        if (net < num_nets && !live_net[net]) {
            live_net[net] = true;
            work.push_back(net);
        }
    }
    while (!work.empty()) {
        NetId net = work.front();
        work.pop_front();
        for (size_t i : drivers[net]) {
            if (live_cell[i])
                continue;
            live_cell[i] = true;
            for (size_t k = 0; k < realInputs(cells[i]); ++k) {
                NetId in = cells[i].inputs[k];
                if (in != kNoNet && in < num_nets && !live_net[in]) {
                    live_net[in] = true;
                    work.push_back(in);
                }
            }
        }
    }

    // Aggregate per module so a dead subsystem is one finding, not
    // hundreds.
    std::map<std::string, std::vector<size_t>> dead;
    for (size_t i = 0; i < cells.size(); ++i)
        if (!live_cell[i])
            dead[cells[i].module].push_back(i);
    for (const auto &[module, idxs] : dead) {
        std::string list;
        std::vector<NetId> nets;
        for (size_t k = 0; k < idxs.size(); ++k) {
            if (k < 6)
                list += (k ? ", " : "") + cellDesc(nl, idxs[k]);
            nets.push_back(cells[idxs[k]].output);
        }
        if (idxs.size() > 6)
            list += ", ...";
        rep.add({Severity::Warning, "dead-logic", module, nets, -1,
                 -1,
                 strfmt("%zu cell(s) reach no primary output: %s",
                        idxs.size(), list.c_str())});
    }
}

void
checkConstOutputs(const Netlist &nl, LintReport &rep)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    // Forward constant propagation from the const rails; -1 means
    // not statically constant. Dominant inputs (a 0 on a NAND, a 1
    // on a NOR, a constant MUX select) fold without the other
    // inputs being known.
    std::vector<int8_t> val(num_nets, -1);
    val[nl.zero()] = 0;
    val[nl.one()] = 1;

    auto fold = [&](const CellInst &cell) -> int8_t {
        auto in = [&](size_t k) -> int8_t {
            NetId n = cell.inputs[k];
            return n == kNoNet || n >= num_nets ? -1 : val[n];
        };
        switch (cell.type) {
          case CellType::INV_X1:
          case CellType::INV_X2:
            return in(0) < 0 ? -1 : !in(0);
          case CellType::BUF_X1:
          case CellType::BUF_X2:
            return in(0);
          case CellType::NAND2:
            if (in(0) == 0 || in(1) == 0)
                return 1;
            return in(0) < 0 || in(1) < 0 ? -1 : !(in(0) && in(1));
          case CellType::NAND3:
            if (in(0) == 0 || in(1) == 0 || in(2) == 0)
                return 1;
            return in(0) < 0 || in(1) < 0 || in(2) < 0
                ? -1 : !(in(0) && in(1) && in(2));
          case CellType::NOR2:
            if (in(0) == 1 || in(1) == 1)
                return 0;
            return in(0) < 0 || in(1) < 0 ? -1 : !(in(0) || in(1));
          case CellType::NOR3:
            if (in(0) == 1 || in(1) == 1 || in(2) == 1)
                return 0;
            return in(0) < 0 || in(1) < 0 || in(2) < 0
                ? -1 : !(in(0) || in(1) || in(2));
          case CellType::XOR2:
            return in(0) < 0 || in(1) < 0 ? -1 : in(0) != in(1);
          case CellType::XNOR2:
            return in(0) < 0 || in(1) < 0 ? -1 : in(0) == in(1);
          case CellType::MUX2:
            if (in(2) >= 0)
                return in(2) ? in(1) : in(0);
            if (in(0) >= 0 && in(0) == in(1))
                return in(0);
            return -1;
          default:
            return -1;   // sequential: state is not a constant
        }
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &cell : cells) {
            if (isSequential(cell.type) || cell.output >= num_nets ||
                val[cell.output] >= 0)
                continue;
            int8_t v = fold(cell);
            if (v >= 0) {
                val[cell.output] = v;
                changed = true;
            }
        }
    }

    for (size_t i = 0; i < cells.size(); ++i) {
        if (isSequential(cells[i].type) ||
            cells[i].output >= num_nets)
            continue;
        int8_t v = val[cells[i].output];
        if (v >= 0)
            rep.add({Severity::Warning, "const-output",
                     cells[i].module, {cells[i].output}, -1, -1,
                     strfmt("%s always outputs %d; fold it away",
                            cellDesc(nl, i).c_str(), v)});
    }
}

} // namespace

LintReport
lintNetlist(const Netlist &nl)
{
    LintReport rep;
    checkConnectivity(nl, rep);
    checkCombLoop(nl, rep);
    checkFanout(nl, rep);
    checkDeadLogic(nl, rep);
    checkConstOutputs(nl, rep);
    rep.resolveNetNames(nl);
    return rep;
}

} // namespace flexi
