#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace flexi
{

uint64_t
deriveSeed(uint64_t seed, uint64_t stream)
{
    // Two rounds of the splitmix64 finalizer, folding the stream
    // index in with a golden-ratio stride between rounds. Any
    // (seed, stream) pair maps to a well-mixed nonzero-ish state;
    // the Rng constructor guards the residual zero case.
    uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
    : state_(seed ? seed : 0x9E3779B97F4A7C15ull)
{
}

uint64_t
Rng::next()
{
    // xorshift64* (Marsaglia / Vigna).
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    if (n == 0)
        panic("Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    if (hi < lo)
        panic("Rng::range: hi < lo");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    haveSpare_ = true;
    return u * f;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

uint64_t
Rng::poisson(double mean)
{
    if (!(mean > 0.0))
        return 0;
    // Split large means additively (Poisson is closed under
    // addition) so exp(-mean) stays representable.
    uint64_t count = 0;
    while (mean > 64.0) {
        count += poisson(64.0);
        mean -= 64.0;
    }
    double limit = std::exp(-mean);
    double product = uniform();
    while (product > limit) {
        ++count;
        product *= uniform();
    }
    return count;
}

} // namespace flexi
