/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (bugs in the library itself), fatal() for user errors
 * that prevent continuing (bad configuration, malformed assembly),
 * warn()/inform() for non-fatal diagnostics.
 */

#ifndef FLEXI_COMMON_LOGGING_HH
#define FLEXI_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace flexi
{

/** Exception thrown by fatal(): a user-level error (bad input). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable internal error. Something that should
 * never happen regardless of user input. Throws PanicError so test
 * code can assert on it instead of aborting the process.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, malformed
 * assembly source, out-of-range parameter). Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning, printed to stderr (once per distinct call). */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

} // namespace flexi

#endif // FLEXI_COMMON_LOGGING_HH
