/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A xorshift64* generator is used everywhere randomness is needed
 * (Monte-Carlo yield studies, random test vectors, random kernel
 * inputs) so that every experiment in the repository is exactly
 * reproducible from a seed. This mirrors the paper's own use of
 * xorshift as a benchmark kernel (XorShift8, [Marsaglia 2003]).
 */

#ifndef FLEXI_COMMON_RNG_HH
#define FLEXI_COMMON_RNG_HH

#include <cstdint>

namespace flexi
{

/**
 * Derive the seed of an independent RNG stream from a base seed and
 * a stream index (splitmix64 finalization over both words). Used to
 * give every Monte-Carlo unit of work — a die site, a design point —
 * its own statistically independent stream, so results do not depend
 * on the order (or thread) in which units are processed, and
 * adding/removing one unit never perturbs another's draws.
 */
uint64_t deriveSeed(uint64_t seed, uint64_t stream);

/** Deterministic xorshift64* PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /**
     * Poisson-distributed event count with the given mean (Knuth's
     * multiplication method, exact for the small means the fault
     * arrival processes draw; large means are split additively so
     * exp(-mean) never underflows). Used by the fleet lifecycle
     * engine to draw per-epoch in-field fault counts.
     */
    uint64_t poisson(double mean);

  private:
    uint64_t state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace flexi

#endif // FLEXI_COMMON_RNG_HH
