/**
 * @file
 * Running statistics accumulator and small table-printing helpers.
 *
 * The yield / process-variation studies report means, standard
 * deviations and relative standard deviations (RSD) over per-die
 * measurements; RunningStat provides these with a numerically stable
 * (Welford) update.
 */

#ifndef FLEXI_COMMON_STATS_HH
#define FLEXI_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace flexi
{

/** Welford-style running mean/variance/min/max accumulator. */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return n_; }
    double mean() const;
    /** Sample variance (n-1 denominator). */
    double variance() const;
    double stddev() const;
    /** Relative standard deviation, stddev/mean. */
    double rsd() const;
    double min() const;
    double max() const;

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-column ASCII table builder used by the benchmark harnesses to
 * print paper tables and figure series.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    /** Render with aligned columns. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimals. */
std::string fmtDouble(double v, int digits = 3);

} // namespace flexi

#endif // FLEXI_COMMON_STATS_HH
