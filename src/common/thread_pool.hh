/**
 * @file
 * Minimal persistent thread pool for the embarrassingly parallel
 * Monte-Carlo layers (wafer studies over dies, DSE sweeps over
 * design points).
 *
 * Design rules that keep every experiment reproducible:
 *
 *  - Work is an index range [0, n); each index writes only its own
 *    output slot. Scheduling therefore never affects results — a
 *    run with 1 thread and a run with 16 are bit-identical as long
 *    as each index derives its own RNG stream (see deriveSeed()).
 *  - parallelFor() blocks until the whole range is done and
 *    rethrows the first worker exception on the calling thread.
 *  - Thread count resolves as: explicit argument, else the
 *    FLEXI_THREADS environment variable, else
 *    std::thread::hardware_concurrency(). A count of 1 runs inline
 *    on the calling thread with no synchronization at all.
 */

#ifndef FLEXI_COMMON_THREAD_POOL_HH
#define FLEXI_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexi
{

class ThreadPool
{
  public:
    /** @param threads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers in the pool (>= 1; 1 means inline execution). */
    unsigned numThreads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n), striped across the pool in
     * contiguous chunks; the calling thread participates. Blocks
     * until the range completes; the first exception thrown by any
     * index is rethrown here (remaining indices are abandoned).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Thread count from the FLEXI_THREADS environment variable if
     * set (clamped to >= 1), else hardware concurrency.
     */
    static unsigned defaultThreads();

    /**
     * Process-wide shared pool sized at defaultThreads(), created on
     * first use. The convenience entry point for the simulation
     * layers: parallelism without per-call thread creation.
     */
    static ThreadPool &global();

  private:
    struct Job
    {
        std::atomic<size_t> next{0};
        size_t n = 0;
        size_t chunk = 1;
        const std::function<void(size_t)> *fn = nullptr;
        std::atomic<unsigned> pending{0};
        std::exception_ptr error;
        std::mutex errorMu;
    };

    void workerLoop();
    static void runJob(Job &job);

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job *job_ = nullptr;
    uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * One-shot helper: run fn(i) for i in [0, n) on @p threads threads
 * (0 = ThreadPool::defaultThreads(), 1 = inline). Uses the shared
 * global pool; safe to call from one orchestration thread at a time
 * (nested calls from worker threads run inline).
 */
void parallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)> &fn);

} // namespace flexi

#endif // FLEXI_COMMON_THREAD_POOL_HH
