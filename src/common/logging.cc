#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <vector>

namespace flexi
{

namespace
{
std::atomic<bool> quietMode{false};
} // namespace

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietMode.load())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietMode.load())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet);
}

} // namespace flexi
