#include "thread_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace flexi
{

namespace
{

/** Serializes submissions to the shared global pool; a submission
 *  that finds the pool busy (nested parallelFor) runs inline. */
std::atomic<bool> globalBusy{false};

} // namespace

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads ? threads : defaultThreads())
{
    // Worker 0 is the calling thread inside parallelFor(), so spawn
    // one fewer OS thread than the logical width.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("FLEXI_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::runJob(Job &job)
{
    for (;;) {
        size_t base = job.next.fetch_add(job.chunk);
        if (base >= job.n)
            return;
        size_t end = std::min(job.n, base + job.chunk);
        for (size_t i = base; i < end; ++i) {
            try {
                (*job.fn)(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(job.errorMu);
                    if (!job.error)
                        job.error = std::current_exception();
                }
                // Abandon the rest of the range.
                job.next.store(job.n);
                return;
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || (job_ && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        runJob(*job);
        if (job->pending.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Job job;
    job.n = n;
    job.fn = &fn;
    // Contiguous chunks bound the atomic traffic on tiny work items
    // while still load-balancing long tails.
    job.chunk = std::max<size_t>(1, n / (4 * threads_));
    job.pending.store(static_cast<unsigned>(workers_.size()));

    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    runJob(job);

    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return job.pending.load() == 0; });
        job_ = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

void
parallelFor(size_t n, unsigned threads,
            const std::function<void(size_t)> &fn)
{
    if (threads == 0)
        threads = ThreadPool::defaultThreads();
    bool inlineRun = threads <= 1 || n <= 1;
    if (!inlineRun && globalBusy.exchange(true)) {
        // The shared pool is already running a range (nested call):
        // fall back to inline execution rather than deadlocking.
        inlineRun = true;
    } else if (!inlineRun) {
        try {
            ThreadPool::global().parallelFor(n, fn);
        } catch (...) {
            globalBusy.store(false);
            throw;
        }
        globalBusy.store(false);
        return;
    }
    for (size_t i = 0; i < n; ++i)
        fn(i);
}

} // namespace flexi
