/**
 * @file
 * Small bit-manipulation helpers used throughout the library.
 */

#ifndef FLEXI_COMMON_BITOPS_HH
#define FLEXI_COMMON_BITOPS_HH

#include <cstdint>

namespace flexi
{

/** Extract bits [hi:lo] (inclusive) of @p value. */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    uint32_t mask = width >= 32 ? ~0u : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/** Extract a single bit of @p value. */
constexpr bool
bit(uint32_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/** Mask @p value down to @p width bits. */
constexpr uint32_t
maskBits(uint32_t value, unsigned width)
{
    return width >= 32 ? value : (value & ((1u << width) - 1u));
}

/**
 * Sign-extend the low @p width bits of @p value to a signed int.
 * E.g. signExtend(0xF, 4) == -1.
 */
constexpr int32_t
signExtend(uint32_t value, unsigned width)
{
    uint32_t m = 1u << (width - 1);
    uint32_t v = maskBits(value, width);
    return static_cast<int32_t>((v ^ m) - m);
}

/** Population count over the low @p width bits. */
constexpr unsigned
popcount(uint32_t value, unsigned width = 32)
{
    unsigned n = 0;
    for (unsigned i = 0; i < width; ++i)
        n += bit(value, i);
    return n;
}

/** Even parity (1 if an odd number of set bits) of low @p width bits. */
constexpr unsigned
parity(uint32_t value, unsigned width = 8)
{
    return popcount(value, width) & 1u;
}

} // namespace flexi

#endif // FLEXI_COMMON_BITOPS_HH
