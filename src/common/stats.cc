#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace flexi
{

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::rsd() const
{
    double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

double
RunningStat::min() const
{
    return min_;
}

double
RunningStat::max() const
{
    return max_;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("TextTable row width %zu != header width %zu",
              row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::str() const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(width[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

} // namespace flexi
