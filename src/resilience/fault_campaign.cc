#include "fault_campaign.hh"

#include <algorithm>
#include <memory>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/inputs.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lane_group.hh"

namespace flexi
{

namespace
{

/** Stream-id salt for injection schedules (see deriveSeed()). */
constexpr uint64_t kCampaignSalt = 0xF0157A11C0DEull;

std::unique_ptr<Netlist>
buildCore(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      case IsaKind::ExtAcc4: return buildExtAcc4Netlist();
      case IsaKind::LoadStore4: return buildLoadStore4Netlist();
    }
    fatal("bad ISA");
}

/** The program, input stream and output target a campaign runs. */
struct Workload
{
    Program prog;
    std::vector<uint8_t> inputs;
    size_t targetOutputs = 0;
};

Workload
makeWorkload(const CampaignConfig &cfg)
{
    if (cfg.isa == IsaKind::FlexiCore8) {
        // The 8-bit core has its own program suite (one output per
        // input octet on every program).
        auto id = static_cast<Fc8Program>(cfg.fc8Program %
                                          kNumFc8Programs);
        return {assemble(cfg.isa, fc8ProgramSource(id)),
                fc8ProgramInputs(id, cfg.workUnits, cfg.seed),
                cfg.workUnits};
    }
    return {assemble(cfg.isa, kernelSource(cfg.kernel, cfg.isa)),
            kernelInputs(cfg.kernel, cfg.workUnits, cfg.seed),
            cfg.workUnits * kernelOutputsPerWork(cfg.kernel)};
}

/**
 * Generate injection @p index's fault schedule. Depends only on the
 * seed, the index, the netlist shape and the fault-free baseline —
 * deliberately NOT on the detector/recovery settings, so campaigns
 * differing only in protection inject identical faults.
 */
std::pair<FaultKind, FaultSchedule>
makeSchedule(const CampaignConfig &cfg, const Netlist &golden,
             uint64_t baseline_cycles, unsigned index)
{
    Rng rng(deriveSeed(cfg.seed ^ kCampaignSalt, index));
    uint64_t horizon = baseline_cycles ? baseline_cycles : 1;
    size_t nets = golden.numNets();
    size_t dffs = golden.numDffs() ? golden.numDffs() : 1;

    FaultSchedule sched;
    double u = rng.uniform();
    if (u < cfg.pTransient) {
        NetId net = static_cast<NetId>(rng.below(nets));
        bool value = rng.chance(0.5);
        uint64_t at = rng.below(horizon);
        sched.transients.push_back({net, value, at, at + 1});
        return {FaultKind::TransientNet, sched};
    }
    if (u < cfg.pTransient + cfg.pFlip) {
        sched.flips.push_back({rng.below(horizon), rng.below(dffs)});
        return {FaultKind::DffFlip, sched};
    }
    // Timing-marginal die: every cycle has a small chance of a
    // single-cycle upset somewhere; guarantee at least one event.
    for (uint64_t c = 0; c < horizon; ++c) {
        if (!rng.chance(cfg.glitchRate))
            continue;
        NetId net = static_cast<NetId>(rng.below(nets));
        sched.transients.push_back({net, rng.chance(0.5), c, c + 1});
    }
    if (sched.transients.empty()) {
        NetId net = static_cast<NetId>(rng.below(nets));
        uint64_t at = rng.below(horizon);
        sched.transients.push_back({net, rng.chance(0.5), at, at + 1});
    }
    return {FaultKind::TimingGlitch, sched};
}

} // namespace

FaultOutcome
classifyCheckedRun(const CheckedRunResult &run,
                   const DetectorConfig &detectors)
{
    bool detected = run.detections > 0;
    bool acted = run.retries > 0 || run.restarts > 0;
    switch (run.outcome) {
      case CheckedOutcome::Degraded:
        // Fail-stop: the runtime gave up loudly, not silently.
        return FaultOutcome::Detected;
      case CheckedOutcome::BudgetExhausted:
        return detected ? FaultOutcome::Detected : FaultOutcome::Hang;
      case CheckedOutcome::Completed:
        break;
    }
    if (run.outputsCorrect) {
        if (!detected)
            return FaultOutcome::Masked;
        return acted ? FaultOutcome::Recovered : FaultOutcome::Detected;
    }
    if (detected)
        return FaultOutcome::Detected;
    bool hung = run.maxPcFrozenCycles > detectors.watchdogCycles;
    return hung ? FaultOutcome::Hang : FaultOutcome::Sdc;
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientNet: return "transient-net";
      case FaultKind::DffFlip: return "dff-flip";
      case FaultKind::TimingGlitch: return "timing-glitch";
    }
    return "?";
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked: return "masked";
      case FaultOutcome::Recovered: return "recovered";
      case FaultOutcome::Detected: return "detected";
      case FaultOutcome::Sdc: return "sdc";
      case FaultOutcome::Hang: return "hang";
      default: return "?";
    }
}

uint64_t
CampaignCounts::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : n)
        sum += c;
    return sum;
}

CampaignCounts
CampaignResult::counts() const
{
    CampaignCounts counts;
    for (const auto &inj : injections)
        ++counts.n[static_cast<size_t>(inj.outcome)];
    return counts;
}

CampaignResult
runFaultCampaign(const CampaignConfig &config)
{
    std::unique_ptr<Netlist> golden = buildCore(config.isa);
    Workload work = makeWorkload(config);

    CheckedRunConfig runCfg;
    runCfg.isa = config.isa;
    runCfg.detectors = config.detectors;
    runCfg.recovery = config.recovery;
    runCfg.targetOutputs = work.targetOutputs;
    runCfg.maxInstructions = config.maxInstructions;

    CampaignResult result;
    result.config = config;

    // Fault-free baseline, with protection disarmed so the reference
    // trajectory (and thus every schedule horizon) is independent of
    // the campaign's detector/recovery settings.
    {
        CheckedRunConfig baseCfg = runCfg;
        baseCfg.detectors = DetectorConfig{false, false, false,
                                           baseCfg.detectors
                                               .watchdogCycles};
        baseCfg.recovery.enabled = false;
        std::unique_ptr<Netlist> die = golden->clone();
        CheckedRunResult base =
            runChecked(*die, work.prog, work.inputs, baseCfg);
        result.baselineCycles = base.cycles;
        result.baselineInstructions = base.instructions;
        result.baselineCorrect =
            base.outcome == CheckedOutcome::Completed &&
            base.outputsCorrect;
    }

    result.injections.resize(config.injections);

    // Every schedule is a pure function of (seed, index, netlist,
    // baseline) — generate them all up front so the bit-parallel
    // prescreen can bind them to lanes.
    std::vector<std::pair<FaultKind, FaultSchedule>> sched(
        config.injections);
    parallelFor(config.injections, config.threads, [&](size_t i) {
        sched[i] = makeSchedule(config, *golden,
                                result.baselineCycles,
                                static_cast<unsigned>(i));
    });

    // Phase 1: wide-lane lockstep prescreen. Most injections are
    // masked — the upset lands in logic the workload never exercises
    // — and a masked run is exactly one unprotected golden-tracking
    // pass, so one word-parallel pass settles up to 512 of them at
    // once. Lanes the prescreen cannot prove clean fall through to
    // the scalar checked runtime, whose results are authoritative;
    // batch membership is a pure function of injection index, so
    // thread count and lane width cannot change any outcome.
    unsigned lanes = std::min<unsigned>(
        config.batchLanes ? config.batchLanes : 1,
        LaneGroup::kMaxLanes);
    std::vector<uint8_t> screened(config.injections, 0);
    if (lanes > 1) {
        size_t num_batches = (config.injections + lanes - 1) / lanes;
        parallelFor(num_batches, config.threads, [&](size_t b) {
            size_t begin = b * lanes;
            unsigned n = static_cast<unsigned>(std::min<size_t>(
                lanes, config.injections - begin));
            std::vector<const FaultSchedule *> group(n);
            for (unsigned lane = 0; lane < n; ++lane)
                group[lane] = &sched[begin + lane].second;
            PrescreenResult ps = prescreenSchedules(
                *golden, work.prog, work.inputs, runCfg, group);
            for (unsigned lane = 0; lane < n; ++lane) {
                if (!ps.clean(lane))
                    continue;
                size_t i = begin + lane;
                InjectionResult &inj = result.injections[i];
                inj.kind = sched[i].first;
                inj.outcome = FaultOutcome::Masked;
                inj.runOutcome = CheckedOutcome::Completed;
                inj.outputsCorrect = true;
                inj.detections = 0;
                inj.retries = 0;
                inj.restarts = 0;
                inj.cycles = ps.cycles;
                inj.firstDetector.clear();
                screened[i] = 1;
            }
        });
    }

    // Phase 2: scalar checked runs for everything else.
    std::vector<size_t> pending;
    for (size_t i = 0; i < screened.size(); ++i)
        if (!screened[i])
            pending.push_back(i);
    parallelFor(pending.size(), config.threads, [&](size_t k) {
        size_t i = pending[k];
        std::unique_ptr<Netlist> die = golden->clone();
        CheckedRunResult run = runChecked(*die, work.prog,
                                          work.inputs, runCfg,
                                          sched[i].second);

        InjectionResult &inj = result.injections[i];
        inj.kind = sched[i].first;
        inj.outcome = classifyCheckedRun(run, config.detectors);
        inj.runOutcome = run.outcome;
        inj.outputsCorrect = run.outputsCorrect;
        inj.detections = run.detections;
        inj.retries = run.retries;
        inj.restarts = run.restarts;
        inj.cycles = run.cycles;
        inj.firstDetector = run.firstDetector;
    });
    return result;
}

} // namespace flexi
