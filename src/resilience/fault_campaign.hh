/**
 * @file
 * Deterministic in-field fault-injection campaigns.
 *
 * A campaign runs one benchmark kernel on a gate-level die many times,
 * each run with one injected in-field fault event, and classifies what
 * happened. Three fault kinds model the upset mechanisms that matter
 * for flexible IGZO parts:
 *
 *  - TransientNet: a single-cycle upset forcing one net for one cycle
 *    (a glitch coupling onto a wire);
 *  - DffFlip: a one-shot state flip of one DFF (a latched upset);
 *  - TimingGlitch: intermittent single-cycle upsets Bernoulli-drawn
 *    per cycle, the signature of a timing-marginal die where the
 *    slowest paths only just make the clock.
 *
 * Classification per injection:
 *
 *  | outcome   | meaning                                            |
 *  |-----------|----------------------------------------------------|
 *  | Masked    | outputs correct, no detector fired                 |
 *  | Recovered | outputs correct after rollback and/or restart      |
 *  | Detected  | a detector fired; outputs wrong or die degraded    |
 *  | Sdc       | outputs silently wrong (no detector fired)         |
 *  | Hang      | no forward progress / budget exhausted, undetected |
 *
 * Determinism contract (same as runWaferStudy): every injection draws
 * from its own RNG stream derived from (seed, injection index), each
 * injection writes only its own result slot, and the fault schedule
 * depends only on the seed and the fault-free baseline — never on the
 * detector or recovery configuration. Campaigns over the same seed
 * are therefore bit-identical across thread counts, and campaigns
 * differing only in protection settings inject identical faults,
 * which is what makes protection-off/protection-on comparisons sound.
 */

#ifndef FLEXI_RESILIENCE_FAULT_CAMPAIGN_HH
#define FLEXI_RESILIENCE_FAULT_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/kernels.hh"
#include "resilience/checked_run.hh"

namespace flexi
{

/** In-field fault mechanisms. */
enum class FaultKind : uint8_t
{
    TransientNet,
    DffFlip,
    TimingGlitch,
};

const char *faultKindName(FaultKind kind);

/** Classification of one injection. */
enum class FaultOutcome : uint8_t
{
    Masked,
    Recovered,
    Detected,
    Sdc,
    Hang,
    NumOutcomes,
};

constexpr size_t kNumFaultOutcomes =
    static_cast<size_t>(FaultOutcome::NumOutcomes);

const char *faultOutcomeName(FaultOutcome outcome);

/**
 * Map one checked run to its campaign classification. Degraded runs
 * are Detected (fail-stop is loud), exhausted budgets are Hang unless
 * a detector fired first, correct-output completions split Masked /
 * Recovered / Detected on whether recovery had to act, and silent
 * wrong output is Sdc — or Hang if the PC froze past the (possibly
 * disarmed) watchdog's trip point. Shared by the injection campaigns
 * and the fleet lifecycle engine.
 */
FaultOutcome classifyCheckedRun(const CheckedRunResult &run,
                                const DetectorConfig &detectors);

/** Result of one injection. */
struct InjectionResult
{
    FaultKind kind = FaultKind::TransientNet;
    FaultOutcome outcome = FaultOutcome::Masked;
    CheckedOutcome runOutcome = CheckedOutcome::Completed;
    bool outputsCorrect = false;
    unsigned detections = 0;
    unsigned retries = 0;
    unsigned restarts = 0;
    uint64_t cycles = 0;
    std::string firstDetector;
};

/** Configuration of one campaign. */
struct CampaignConfig
{
    IsaKind isa = IsaKind::FlexiCore4;
    /** Kernel under test (fc4/ext/ls ISAs). */
    KernelId kernel = KernelId::Thresholding;
    /** Program under test when isa == FlexiCore8 (index into
     *  Fc8Program; the fc8 suite has its own program set). */
    unsigned fc8Program = 0;
    uint64_t seed = 1;
    /** Number of injection runs. */
    unsigned injections = 96;
    /** Units of work per run. */
    size_t workUnits = 6;
    /** Fault-kind mix (remainder goes to TimingGlitch). */
    double pTransient = 0.4;
    double pFlip = 0.4;
    /** Per-cycle upset probability for TimingGlitch injections. */
    double glitchRate = 0.02;
    DetectorConfig detectors;
    RecoveryPolicy recovery;
    /** 0 = auto, 1 = serial (bit-identical either way). */
    unsigned threads = 0;
    uint64_t maxInstructions = 60000;
    /**
     * Bit-parallel prescreen width: up to batchLanes injection
     * schedules run together through one unprotected lockstep pass
     * on the wide-lane compiled backend (up to 512 lanes); lanes
     * that never diverge from golden are classified Masked directly,
     * the rest re-run through the scalar checked runtime. 1 forces
     * the all-scalar path. Outcomes are bit-identical for any value
     * (the prescreen only skips work it can prove).
     */
    unsigned batchLanes = 512;
};

/** Aggregated classification counts. */
struct CampaignCounts
{
    std::array<uint64_t, kNumFaultOutcomes> n{};

    uint64_t operator[](FaultOutcome o) const
    {
        return n[static_cast<size_t>(o)];
    }
    uint64_t total() const;
};

/** Result of one campaign. */
struct CampaignResult
{
    CampaignConfig config;
    /** Fault-free reference run. */
    uint64_t baselineCycles = 0;
    uint64_t baselineInstructions = 0;
    bool baselineCorrect = false;

    std::vector<InjectionResult> injections;

    CampaignCounts counts() const;
};

/**
 * Run a fault-injection campaign. The die is a pristine clone of the
 * core's golden netlist per injection; callers wanting campaigns on
 * defective dies should use the salvage layer instead.
 */
CampaignResult runFaultCampaign(const CampaignConfig &config);

} // namespace flexi

#endif // FLEXI_RESILIENCE_FAULT_CAMPAIGN_HH
