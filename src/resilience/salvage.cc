#include "salvage.hh"

#include <memory>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/inputs.hh"
#include "kernels/kernels.hh"
#include "netlist/flexicore_netlist.hh"
#include "yield/die_model.hh"

namespace flexi
{

namespace
{

constexpr uint64_t kSalvageSalt = 0x5A17A6EDull;
/** Per-kernel sub-stream stride within one die's salvage stream. */
constexpr uint64_t kKernelStride = 16;

struct SalvageWorkload
{
    Program prog;
    std::vector<uint8_t> inputs;
    size_t targetOutputs = 0;
    uint64_t baselineCycles = 0;
};

std::unique_ptr<Netlist>
salvageGolden(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      default:
        fatal("salvage binning models the fabricated cores, not %s",
              isaName(isa));
    }
}

std::vector<SalvageWorkload>
makeSuite(const SalvageConfig &cfg, const Netlist &golden)
{
    IsaKind isa = cfg.study.isa;
    uint64_t inputSeed = cfg.study.seed ^ kSalvageSalt;
    std::vector<SalvageWorkload> suite;
    if (isa == IsaKind::FlexiCore8) {
        for (size_t p = 0; p < kNumFc8Programs; ++p) {
            auto id = static_cast<Fc8Program>(p);
            suite.push_back({assemble(isa, fc8ProgramSource(id)),
                             fc8ProgramInputs(id, cfg.workUnits,
                                              inputSeed),
                             cfg.workUnits, 0});
        }
    } else {
        for (KernelId id : allKernels())
            suite.push_back(
                {assemble(isa, kernelSource(id, isa)),
                 kernelInputs(id, cfg.workUnits, inputSeed),
                 cfg.workUnits * kernelOutputsPerWork(id), 0});
    }

    // Fault-free baseline cycle counts: the horizons the per-die
    // glitch schedules are drawn over.
    for (SalvageWorkload &w : suite) {
        CheckedRunConfig runCfg;
        runCfg.isa = isa;
        runCfg.detectors = DetectorConfig{false, false, false, 192};
        runCfg.recovery.enabled = false;
        runCfg.targetOutputs = w.targetOutputs;
        runCfg.maxInstructions = cfg.maxInstructions;
        std::unique_ptr<Netlist> die = golden.clone();
        CheckedRunResult base =
            runChecked(*die, w.prog, w.inputs, runCfg);
        if (base.outcome != CheckedOutcome::Completed ||
            !base.outputsCorrect)
            panic("salvage baseline failed on a pristine die");
        w.baselineCycles = base.cycles;
    }
    return suite;
}

} // namespace

const char *
dieBinName(DieBin bin)
{
    switch (bin) {
      case DieBin::Functional: return "functional";
      case DieBin::Salvaged: return "salvaged";
      case DieBin::Dead: return "dead";
    }
    return "?";
}

double
SalvageReport::rawYield(bool inclusion_only) const
{
    return study.yield(vdd, inclusion_only);
}

double
SalvageReport::effectiveYield(bool inclusion_only) const
{
    size_t total = 0, good = 0;
    for (size_t i = 0; i < dies.size(); ++i) {
        if (inclusion_only && !study.dies[i].site.inInclusionZone)
            continue;
        ++total;
        good += dies[i].bin != DieBin::Dead;
    }
    return total ? static_cast<double>(good) / total : 0.0;
}

size_t
SalvageReport::binCount(DieBin bin, bool inclusion_only) const
{
    size_t count = 0;
    for (size_t i = 0; i < dies.size(); ++i) {
        if (inclusion_only && !study.dies[i].site.inInclusionZone)
            continue;
        count += dies[i].bin == bin;
    }
    return count;
}

SalvageReport
runSalvageStudy(const SalvageConfig &config)
{
    if (!config.study.gateLevelErrors)
        fatal("salvage binning needs gateLevelErrors (the recorded "
              "per-die fault lists)");

    SalvageReport report;
    report.vdd = config.vdd;
    report.study = runWaferStudy(config.study);

    std::unique_ptr<Netlist> golden = salvageGolden(config.study.isa);
    std::vector<SalvageWorkload> suite = makeSuite(config, *golden);
    DieModel model(report.study.spec, config.study.params);

    report.dies.resize(report.study.dies.size());
    parallelFor(report.study.dies.size(), config.threads,
                [&](size_t i) {
        const DieResult &die = report.study.dies[i];
        DieSalvage &verdict = report.dies[i];
        verdict.dieIndex = i;
        verdict.kernelsTotal = static_cast<unsigned>(suite.size());

        const DieProbe &probe =
            config.vdd > 4.0 ? die.at45V : die.at3V;
        if (probe.functional()) {
            verdict.bin = DieBin::Functional;
            return;
        }

        // Timing-marginal dies glitch at the per-cycle rate the
        // probe model expects at this supply.
        double glitchRate = model.glitchRate(die.sample, config.vdd);

        for (size_t k = 0; k < suite.size(); ++k) {
            const SalvageWorkload &w = suite[k];
            // The exact faulty die, rebuilt from the probe record; a
            // fresh clone per kernel restarts the transient clock.
            std::unique_ptr<Netlist> faulty = golden->clone();
            for (const StuckFault &f : die.faults)
                faulty->injectFault(f);

            FaultSchedule sched;
            if (glitchRate > 0) {
                Rng rng(deriveSeed(config.study.seed ^ kSalvageSalt,
                                   die.site.index * kKernelStride +
                                       k));
                uint64_t horizon = 2 * w.baselineCycles + 64;
                for (uint64_t c = 0; c < horizon; ++c) {
                    if (!rng.chance(glitchRate))
                        continue;
                    NetId net = static_cast<NetId>(
                        rng.below(faulty->numNets()));
                    sched.transients.push_back(
                        {net, rng.chance(0.5), c, c + 1});
                }
            }

            CheckedRunConfig runCfg;
            runCfg.isa = config.study.isa;
            runCfg.detectors = config.detectors;
            runCfg.recovery = config.recovery;
            runCfg.targetOutputs = w.targetOutputs;
            runCfg.maxInstructions = config.maxInstructions;
            CheckedRunResult run = runChecked(*faulty, w.prog,
                                              w.inputs, runCfg,
                                              sched);
            verdict.detections += run.detections;
            verdict.retries += run.retries;
            verdict.restarts += run.restarts;
            if (run.outcome == CheckedOutcome::Completed &&
                run.outputsCorrect) {
                ++verdict.kernelsPassed;
                verdict.passedMask |= 1u << k;
            }
        }
        verdict.bin = verdict.kernelsPassed >= config.minKernels
                          ? DieBin::Salvaged
                          : DieBin::Dead;
    });
    return report;
}

} // namespace flexi
