/**
 * @file
 * Die-salvage binning on top of the Table 5 wafer study.
 *
 * The probe station's criterion is brutal: one output mismatch over
 * the whole vector suite and the die is scrap. But a die whose defect
 * is localized — a stuck bit in a data-memory word the application
 * never touches, a broken path only the test program sensitizes, a
 * timing margin that only occasionally glitches — can still earn its
 * keep running real kernels under the detect-and-recover runtime.
 *
 * The salvage pass re-examines every die that failed full probe: the
 * exact faulty netlist is rebuilt from the faults recorded in
 * DieResult, timing-marginal dies additionally get intermittent
 * glitch schedules scaled by their expected error rate, and every
 * kernel of the benchmark suite (the seven Table 6 kernels on
 * FlexiCore4, the four application programs on FlexiCore8) is run to
 * completion under the checked runtime. A die completing at least
 * minKernels of them with correct outputs is binned *Salvaged*, and
 * its passedMask records exactly which application bins the part
 * still qualifies for — classic part binning, graded by capability.
 * The report's effective yield counts Functional + Salvaged dies and
 * by construction can only exceed the raw yield — which is reported
 * unchanged from the underlying study.
 */

#ifndef FLEXI_RESILIENCE_SALVAGE_HH
#define FLEXI_RESILIENCE_SALVAGE_HH

#include <cstdint>
#include <vector>

#include "resilience/checked_run.hh"
#include "yield/wafer_study.hh"

namespace flexi
{

/** Post-salvage bin of one die. */
enum class DieBin : uint8_t
{
    Functional,   ///< passed full probe
    Salvaged,     ///< failed probe; completes the suite under recovery
    Dead,         ///< failed probe and the recovery runtime gave up
};

const char *dieBinName(DieBin bin);

/** Salvage verdict for one die. */
struct DieSalvage
{
    size_t dieIndex = 0;
    DieBin bin = DieBin::Functional;
    unsigned kernelsPassed = 0;
    unsigned kernelsTotal = 0;
    /** Bit k set = suite kernel k completed with correct outputs —
     *  the application bin the salvaged part can be sold into. */
    uint32_t passedMask = 0;
    unsigned detections = 0;
    unsigned retries = 0;
    unsigned restarts = 0;
};

/** Configuration of a salvage study. */
struct SalvageConfig
{
    /** The underlying wafer study (fabricated cores only). */
    WaferStudyConfig study;
    /** Binning voltage (the paper's headline yields are at 4.5 V). */
    double vdd = 4.5;
    DetectorConfig detectors;
    RecoveryPolicy recovery;
    /** Units of work per kernel in the salvage qualification run. */
    size_t workUnits = 4;
    /**
     * Kernels a failed die must complete to be binned Salvaged. The
     * default of 1 is classic part binning — the die is sold into
     * whatever application bins it qualifies for (passedMask); raise
     * to the suite size to demand fully-general salvage.
     */
    unsigned minKernels = 1;
    uint64_t maxInstructions = 60000;
    /** 0 = auto (results thread-count-invariant regardless). */
    unsigned threads = 0;
};

/** Result of a salvage study. All rates are at the binning voltage. */
struct SalvageReport
{
    WaferStudyResult study;
    /** Binning voltage the verdicts were produced at. */
    double vdd = 4.5;
    /** One verdict per die, aligned with study.dies. */
    std::vector<DieSalvage> dies;

    /** study.yield(vdd, inclusion_only) — untouched by salvage. */
    double rawYield(bool inclusion_only) const;
    /** (Functional + Salvaged) / dies; >= rawYield by construction. */
    double effectiveYield(bool inclusion_only) const;

    size_t binCount(DieBin bin, bool inclusion_only) const;
};

/**
 * Run the wafer study of @p config.study and re-bin every failed die
 * with the recovery runtime. Requires gateLevelErrors (salvage needs
 * the recorded fault lists).
 */
SalvageReport runSalvageStudy(const SalvageConfig &config);

} // namespace flexi

#endif // FLEXI_RESILIENCE_SALVAGE_HH
