/**
 * @file
 * Detect-and-recover checked execution harness.
 *
 * The paper motivates field reprogrammability as the repair story for
 * flexible parts (Section 5) but never simulates the repair loop.
 * This harness closes that gap: it runs a (possibly faulty) gate-level
 * die in lockstep fashion against the architectural golden model —
 * the same die-drives-its-own-PC methodology as runLockstep() — while
 * layering on
 *
 *  - pluggable *detectors*: an output-signature CRC compared at every
 *    checkpoint, a PC-progress watchdog with a cycle-budget timeout,
 *    and (the expensive option) full per-instruction lockstep compare
 *    of the PC and OPORT pads; and
 *  - a *recovery policy*: periodic checkpoints of the die's DFF state
 *    plus the architectural model, rollback on detection with bounded
 *    retries, escalation to one full restart (modeling a re-page of
 *    the program through the off-chip MMU), and finally declaring the
 *    die degraded.
 *
 * Transient upsets injected via Netlist::injectTransient() live on
 * the die's monotonic cycle clock, so a rolled-back replay naturally
 * runs *after* the upset window — retry genuinely repairs transient
 * faults, while stuck-at defects survive rollback and restart and
 * escalate to Degraded, exactly the triage the salvage binning needs.
 */

#ifndef FLEXI_RESILIENCE_CHECKED_RUN_HH
#define FLEXI_RESILIENCE_CHECKED_RUN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "netlist/lane_group.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** Which detectors the checked runtime arms. */
struct DetectorConfig
{
    /** Per-instruction PC/OPORT pad compare against golden. */
    bool lockstep = false;
    /** Output-stream CRC compared at each checkpoint and at the end. */
    bool outputCrc = true;
    /** Die-PC progress watchdog. */
    bool watchdog = true;
    /** Watchdog trip point: die PC unchanged for this many cycles. */
    uint64_t watchdogCycles = 192;
};

/** Checkpoint/rollback recovery policy. */
struct RecoveryPolicy
{
    /** Act on detections (off = detect-only, fail-stop reporting). */
    bool enabled = true;
    /** Instructions between checkpoints. */
    unsigned checkpointInstructions = 32;
    /** Rollback attempts per checkpoint before escalating. */
    unsigned maxRetries = 2;
    /** Escalate to one full restart (MMU re-page) before giving up. */
    bool allowRestart = true;
};

/** How a checked run ended. */
enum class CheckedOutcome : uint8_t
{
    Completed,         ///< produced the requested outputs (or halted)
    Degraded,          ///< recovery exhausted; die declared degraded
    BudgetExhausted,   ///< instruction/cycle budget ran out
};

const char *checkedOutcomeName(CheckedOutcome outcome);

/** Full result of one checked run. */
struct CheckedRunResult
{
    CheckedOutcome outcome = CheckedOutcome::Completed;
    /** Die output stream identical to the golden model's? */
    bool outputsCorrect = false;

    uint64_t cycles = 0;         ///< die cycles driven (incl. replays)
    uint64_t instructions = 0;   ///< golden instructions executed

    /** Ground truth kept even when the detectors are disarmed. */
    uint64_t padMismatches = 0;
    uint64_t maxPcFrozenCycles = 0;

    unsigned detections = 0;
    unsigned retries = 0;
    unsigned restarts = 0;
    /** Detector that fired first ("crc" / "watchdog" / "lockstep"). */
    std::string firstDetector;

    std::vector<uint8_t> dieOutputs;
    std::vector<uint8_t> goldenOutputs;

    /**
     * The die's architectural DFF state when the run ended (the
     * state the part powers down with), in saveDffState() layout.
     * The fleet lifecycle engine snapshots it into its per-die
     * records and checkpoint files.
     */
    std::vector<uint8_t> endDff;
};

/** A schedule of in-field fault events to apply while running. */
struct FaultSchedule
{
    /** Time-windowed net upsets (absolute die cycles). */
    std::vector<TransientFault> transients;

    /** One-shot DFF state flips, applied when the die clock reaches
     *  the given cycle (never re-applied on rollback — a flip is a
     *  real-time event, not part of the program). */
    struct DffFlip
    {
        uint64_t cycle = 0;
        size_t dff = 0;
    };
    std::vector<DffFlip> flips;
};

/** Configuration of one checked run. */
struct CheckedRunConfig
{
    IsaKind isa = IsaKind::FlexiCore4;
    DetectorConfig detectors;
    RecoveryPolicy recovery;
    /** Outputs to produce; 0 = run until the golden model halts. */
    size_t targetOutputs = 0;
    uint64_t maxInstructions = 100000;
    /** Die cycle budget; 0 = derived from maxInstructions. */
    uint64_t maxCycles = 0;
};

/**
 * Run @p prog on the gate-level die @p die under the checked runtime.
 *
 * @param die an elaborated netlist for cfg.isa (cloned dies with
 *        stuck-at faults welcome); reset() is called on entry, the
 *        schedule's transients are injected on top of whatever
 *        faults the caller installed
 * @param prog the assembled program (multi-page programs page through
 *        an off-chip MMU on both the golden and the die side)
 * @param inputs input-bus values, consumed per architectural read
 * @param cfg detectors, recovery policy and budgets
 * @param schedule in-field fault events (empty = fault-free run)
 */
CheckedRunResult runChecked(Netlist &die, const Program &prog,
                            const std::vector<uint8_t> &inputs,
                            const CheckedRunConfig &cfg,
                            const FaultSchedule &schedule = {});

/** Result of a batched lockstep prescreen of fault schedules. */
struct PrescreenResult
{
    /**
     * Lanes proven clean: the die's PC/OPORT pads matched golden at
     * every instruction boundary, the PC never froze past an armed
     * watchdog, and the run completed within budget. A clean lane's
     * full runChecked() result is known without running it: outcome
     * Completed, outputs correct, zero detections/retries/restarts,
     * and cycles equal to the prescreen's cycle count. Bit L of word
     * w covers lane w*64 + L; query with clean().
     */
    std::array<uint64_t, LaneGroup::kMaxWords> cleanMask{};

    bool
    clean(unsigned lane) const
    {
        return (cleanMask[lane / 64] >> (lane % 64)) & 1ull;
    }
    /** Die cycles driven (the clean lanes' runChecked cycles). */
    uint64_t cycles = 0;
    /** Golden run reached done() within the instruction/cycle
     *  budgets (false means every lane must be re-run). */
    bool completed = false;
    /**
     * Per-lane end-of-run DFF state in saveDffState() layout, only
     * filled when the prescreen was asked to capture end state and
     * completed. Meaningful for clean lanes (bit-identical to the
     * scalar runChecked endDff); dirty lanes' entries are whatever
     * the unprotected pass left behind and must not be consumed.
     */
    std::vector<std::vector<uint8_t>> endDff;
};

/**
 * Drive up to LaneGroup::kMaxLanes (512) fault schedules through one
 * shared unprotected lockstep pass of @p prog on a LaneGroup of
 * @p golden's structure (the wide-lane compiled backend), and prove
 * which lanes a scalar runChecked() under @p cfg would
 * classify as fault-free behaviour (no divergence from golden, no
 * detector able to fire). Lanes NOT in cleanMask have diverged — or
 * could not be proven clean — and must be re-run through the scalar
 * runChecked() for their exact outcome; lanes in cleanMask need not.
 *
 * The prescreen is sound for any DetectorConfig/RecoveryPolicy in
 * @p cfg because detectors and recovery only alter a run's
 * trajectory after a detection, and a clean lane can never trigger
 * one: the lockstep and final output compares see no mismatch, the
 * output CRC streams are identical at every checkpoint, and lanes
 * whose PC freezes past an armed watchdog are retired to the scalar
 * path.
 *
 * @p laneFaults optionally installs per-lane stuck-at faults (null
 * entries allowed) before the pass — the fleet engine packs salvaged
 * dies, whose manufacturing defects ride alongside the in-field
 * schedule, into the same word. The soundness argument is unchanged:
 * a lane is clean only if its pads tracked golden at every boundary,
 * defects and all. @p captureEndState additionally snapshots every
 * lane's end-of-run DFF state into PrescreenResult::endDff.
 */
PrescreenResult
prescreenSchedules(const Netlist &golden, const Program &prog,
                   const std::vector<uint8_t> &inputs,
                   const CheckedRunConfig &cfg,
                   const std::vector<const FaultSchedule *> &schedules,
                   const std::vector<const std::vector<StuckFault> *>
                       *laneFaults = nullptr,
                   bool captureEndState = false);

/** Incremental CRC-8 (poly 0x07) used by the output detector. */
uint8_t crc8(uint8_t crc, uint8_t byte);

} // namespace flexi

#endif // FLEXI_RESILIENCE_CHECKED_RUN_HH
