#include "checked_run.hh"

#include <algorithm>
#include <array>
#include <memory>

#include "common/logging.hh"
#include "isa/encoding.hh"
#include "netlist/lane_group.hh"
#include "sim/core_sim.hh"
#include "sim/environment.hh"
#include "sim/mmu.hh"

namespace flexi
{

uint8_t
crc8(uint8_t crc, uint8_t byte)
{
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit)
        crc = crc & 0x80 ? static_cast<uint8_t>((crc << 1) ^ 0x07)
                         : static_cast<uint8_t>(crc << 1);
    return crc;
}

const char *
checkedOutcomeName(CheckedOutcome outcome)
{
    switch (outcome) {
      case CheckedOutcome::Completed: return "completed";
      case CheckedOutcome::Degraded: return "degraded";
      case CheckedOutcome::BudgetExhausted: return "budget-exhausted";
    }
    return "?";
}

namespace
{

/** Environment returning a value chosen by the harness per step. */
class HeldInputEnv : public Environment
{
  public:
    uint8_t readInput() override { return held; }
    void
    writeOutput(uint8_t value) override
    {
        outputs.push_back(value);
    }

    uint8_t held = 0;
    std::vector<uint8_t> outputs;
};

/** Does this instruction architecturally sample the input bus? */
bool
readsInput(const Instruction &inst)
{
    return inst.mode == Mode::Mem && inst.op != Op::Store &&
           inst.operand == kInputPortAddr;
}

constexpr unsigned kNoPc = ~0u;

class CheckedRunner
{
  public:
    CheckedRunner(Netlist &die, const Program &prog,
                  const std::vector<uint8_t> &inputs,
                  const CheckedRunConfig &cfg,
                  const FaultSchedule &schedule)
        : die_(die), prog_(prog), inputs_(inputs), cfg_(cfg)
    {
        if (!die.elaborated())
            fatal("checked run needs an elaborated netlist");
        wide_ = cfg.isa == IsaKind::ExtAcc4 ||
                cfg.isa == IsaKind::LoadStore4;
        wordPc_ = cfg.isa == IsaKind::LoadStore4;
        width_ = isaDataWidth(cfg.isa);
        pcBus_ = die.outputBus("pc", 7);
        instrBus_ = die.inputBus("instr", wide_ ? 16 : 8);
        iportBus_ = die.inputBus("iport", width_);
        oportBus_ = die.outputBus("oport", width_);

        multiPage_ = prog.numPages() > 1;
        if (multiPage_)
            paged_ = std::make_unique<PagedEnvironment>(env_);
        tcfg_.isa = cfg.isa;

        maxCycles_ = cfg.maxCycles ? cfg.maxCycles
                                   : cfg.maxInstructions * 8 + 1024;

        die_.reset();
        for (const auto &t : schedule.transients)
            die_.injectTransient(t);
        flips_ = schedule.flips;
        std::sort(flips_.begin(), flips_.end(),
                  [](const FaultSchedule::DffFlip &a,
                     const FaultSchedule::DffFlip &b) {
                      return a.cycle < b.cycle;
                  });

        freshGolden();
        takeCheckpoint();
    }

    CheckedRunResult
    run()
    {
        while (true) {
            if (done()) {
                bool mismatch = dieOut_ != env_.outputs;
                bool armed = cfg_.detectors.outputCrc ||
                             cfg_.detectors.lockstep;
                if (mismatch && armed) {
                    if (!onDetection(cfg_.detectors.outputCrc
                                         ? "crc" : "lockstep"))
                        break;           // degraded
                    if (recoveryActed_)
                        continue;        // rolled back; resume
                    // detect-only: recorded, complete as-is
                }
                res_.outcome = CheckedOutcome::Completed;
                break;
            }
            if (res_.instructions >= cfg_.maxInstructions ||
                res_.cycles >= maxCycles_) {
                res_.outcome = CheckedOutcome::BudgetExhausted;
                break;
            }
            if (!stepInstruction())
                break;                   // degraded mid-step
        }
        res_.dieOutputs = dieOut_;
        res_.goldenOutputs = env_.outputs;
        res_.outputsCorrect = res_.outcome == CheckedOutcome::Completed &&
                              dieOut_ == env_.outputs;
        res_.endDff = die_.saveDffState();
        return res_;
    }

  private:
    struct Checkpoint
    {
        std::vector<uint8_t> dff;
        std::unique_ptr<CoreSim> golden;
        size_t inputIdx = 0;
        uint8_t held = 0;
        size_t dieOutSize = 0;
        size_t goldenOutSize = 0;
        uint8_t dieCrc = 0;
        uint8_t goldenCrc = 0;
        Mmu dieMmu;
        unsigned diePage = 0;
        Mmu goldenMmu;
        unsigned lastDiePc = kNoPc;
        uint64_t frozen = 0;
    };

    Environment &
    goldenEnv()
    {
        return paged_ ? static_cast<Environment &>(*paged_)
                      : static_cast<Environment &>(env_);
    }

    void
    freshGolden()
    {
        golden_ = std::make_unique<CoreSim>(tcfg_, prog_, goldenEnv());
    }

    bool
    done() const
    {
        if (golden_->halted())
            return true;
        return cfg_.targetOutputs &&
               env_.outputs.size() >= cfg_.targetOutputs;
    }

    void
    pushDieOut(uint8_t value)
    {
        dieOut_.push_back(value);
        dieCrc_ = crc8(dieCrc_, value);
    }

    void
    applyDueFlips()
    {
        while (flipIdx_ < flips_.size() &&
               flips_[flipIdx_].cycle <= die_.cycle()) {
            if (die_.numDffs())
                die_.flipDff(flips_[flipIdx_].dff % die_.numDffs());
            ++flipIdx_;
        }
    }

    void
    takeCheckpoint()
    {
        if (cfg_.recovery.enabled) {
            cp_.dff = die_.saveDffState();
            cp_.golden = std::make_unique<CoreSim>(*golden_);
            cp_.inputIdx = inputIdx_;
            cp_.held = env_.held;
            cp_.dieOutSize = dieOut_.size();
            cp_.goldenOutSize = env_.outputs.size();
            cp_.dieCrc = dieCrc_;
            cp_.goldenCrc = goldenCrc_;
            cp_.dieMmu = dieMmu_;
            cp_.diePage = diePage_;
            if (paged_)
                cp_.goldenMmu = paged_->mmu();
            cp_.lastDiePc = lastDiePc_;
            cp_.frozen = frozen_;
        }
        instrSinceCp_ = 0;
        retriesSinceCp_ = 0;
    }

    void
    rollback()
    {
        die_.restoreDffState(cp_.dff);
        die_.evaluate();   // re-expose the restored state on the pads
        golden_ = std::make_unique<CoreSim>(*cp_.golden);
        inputIdx_ = cp_.inputIdx;
        env_.held = cp_.held;
        env_.outputs.resize(cp_.goldenOutSize);
        dieOut_.resize(cp_.dieOutSize);
        dieCrc_ = cp_.dieCrc;
        goldenCrc_ = cp_.goldenCrc;
        dieMmu_ = cp_.dieMmu;
        diePage_ = cp_.diePage;
        if (paged_)
            paged_->mmu() = cp_.goldenMmu;
        lastDiePc_ = cp_.lastDiePc;
        frozen_ = cp_.frozen;
        instrSinceCp_ = 0;
    }

    /**
     * Escalation step two: power-cycle the die and re-page the whole
     * program through the off-chip MMU from scratch. The die's
     * monotonic transient clock keeps counting, so past upset windows
     * do not re-fire on the second attempt.
     */
    void
    restart()
    {
        die_.reset();
        dieMmu_.reset();
        diePage_ = 0;
        env_.outputs.clear();
        env_.held = 0;
        if (paged_)
            paged_->mmu().reset();
        dieOut_.clear();
        dieCrc_ = 0;
        goldenCrc_ = 0;
        inputIdx_ = 0;
        freshGolden();
        lastDiePc_ = kNoPc;
        frozen_ = 0;
        takeCheckpoint();
    }

    /**
     * A detector fired. Returns false when the run must stop (die
     * declared degraded); sets recoveryActed_ when state was rolled
     * back or restarted (the caller abandons the current step).
     */
    bool
    onDetection(const char *detector)
    {
        ++res_.detections;
        if (res_.firstDetector.empty())
            res_.firstDetector = detector;
        recoveryActed_ = false;
        if (!cfg_.recovery.enabled)
            return true;                 // detect-only: report and go on
        if (retriesSinceCp_ < cfg_.recovery.maxRetries) {
            rollback();
            ++res_.retries;
            ++retriesSinceCp_;
            recoveryActed_ = true;
            return true;
        }
        if (cfg_.recovery.allowRestart && res_.restarts == 0) {
            restart();
            ++res_.restarts;
            recoveryActed_ = true;
            return true;
        }
        res_.outcome = CheckedOutcome::Degraded;
        return false;
    }

    bool
    stepInstruction()
    {
        // Decode at the *golden* PC (and page) to learn whether this
        // instruction samples the input bus; both models then see the
        // same held value, exactly as in runLockstep().
        const std::vector<uint8_t> &gimage =
            prog_.page(golden_->page());
        DecodeResult dec = decodeAt(cfg_.isa, gimage, golden_->pc());
        if (readsInput(dec.inst) && inputIdx_ < inputs_.size())
            env_.held = inputs_[inputIdx_++] &
                        static_cast<uint8_t>((1u << width_) - 1u);

        // Drive the die from its own PC pads — and its own MMU page.
        // A corrupted die can page its MMU register to a page the
        // program never filled; external memory there reads as a
        // floating (all-zero) bus, not as a harness error.
        static const std::vector<uint8_t> kUnmappedPage;
        unsigned cycles = wide_ ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            applyDueFlips();
            const std::vector<uint8_t> &dimage =
                diePage_ < prog_.numPages() ? prog_.page(diePage_)
                                            : kUnmappedPage;
            auto fetch = [&](unsigned addr) -> uint8_t {
                return addr < dimage.size() ? dimage[addr] : 0;
            };
            unsigned diePc = die_.bus(pcBus_);
            if (wide_) {
                unsigned base = wordPc_ ? diePc * 2 : diePc;
                die_.setBus(instrBus_,
                            fetch(base) | (fetch(base + 1) << 8));
            } else {
                die_.setBus(instrBus_, fetch(diePc));
            }
            die_.setBus(iportBus_, env_.held);
            die_.evaluate();
            die_.clockEdge();
            die_.evaluate();   // expose new state on the pads
            ++res_.cycles;

            unsigned newPc = die_.bus(pcBus_);
            if (newPc == lastDiePc_) {
                ++frozen_;
            } else {
                frozen_ = 0;
                lastDiePc_ = newPc;
            }
            res_.maxPcFrozenCycles =
                std::max(res_.maxPcFrozenCycles, frozen_);
            // Edge-triggered so a detect-only run logs one event per
            // freeze episode instead of one per stuck cycle.
            if (cfg_.detectors.watchdog &&
                frozen_ == cfg_.detectors.watchdogCycles + 1) {
                if (!onDetection("watchdog"))
                    return false;
                if (recoveryActed_)
                    return true;         // instruction abandoned
            }
        }

        uint64_t prevIo = golden_->stats().ioWrites;
        uint64_t prevTb = golden_->stats().takenBranches;
        size_t prevGoldenOut = env_.outputs.size();
        golden_->step();
        ++res_.instructions;

        // Mirror the probe methodology: the die's output value for
        // this event is whatever its OPORT pads carry when the golden
        // model performs the write. Multi-page dies route it through
        // their own off-chip MMU FST.
        if (golden_->stats().ioWrites != prevIo) {
            uint8_t dieVal = static_cast<uint8_t>(die_.bus(oportBus_));
            if (multiPage_) {
                for (uint8_t v : dieMmu_.onOutput(dieVal))
                    pushDieOut(v);
            } else {
                pushDieOut(dieVal);
            }
        }
        for (size_t i = prevGoldenOut; i < env_.outputs.size(); ++i)
            goldenCrc_ = crc8(goldenCrc_, env_.outputs[i]);
        if (multiPage_ && golden_->stats().takenBranches != prevTb) {
            int p = dieMmu_.takePendingPage();
            if (p >= 0)
                diePage_ = static_cast<unsigned>(p);
        }

        bool mismatch = die_.bus(pcBus_) != golden_->pc() ||
                        die_.bus(oportBus_) != golden_->outputLatch();
        res_.padMismatches += mismatch;
        if (mismatch && cfg_.detectors.lockstep) {
            if (!onDetection("lockstep"))
                return false;
            if (recoveryActed_)
                return true;
        }

        if (++instrSinceCp_ >= cfg_.recovery.checkpointInstructions) {
            bool crcBad = cfg_.detectors.outputCrc &&
                          (dieCrc_ != goldenCrc_ ||
                           dieOut_.size() != env_.outputs.size());
            if (crcBad) {
                if (!onDetection("crc"))
                    return false;
                if (recoveryActed_)
                    return true;
            }
            // Checkpoint only state the detectors call clean (or the
            // best we know in detect-only mode).
            takeCheckpoint();
        }
        return true;
    }

    Netlist &die_;
    const Program &prog_;
    const std::vector<uint8_t> &inputs_;
    const CheckedRunConfig &cfg_;

    bool wide_ = false;
    bool wordPc_ = false;
    unsigned width_ = 4;
    BusHandle pcBus_, instrBus_, iportBus_, oportBus_;
    bool multiPage_ = false;
    uint64_t maxCycles_ = 0;

    HeldInputEnv env_;
    std::unique_ptr<PagedEnvironment> paged_;
    TimingConfig tcfg_;
    std::unique_ptr<CoreSim> golden_;

    std::vector<FaultSchedule::DffFlip> flips_;
    size_t flipIdx_ = 0;

    Mmu dieMmu_;
    unsigned diePage_ = 0;
    std::vector<uint8_t> dieOut_;
    uint8_t dieCrc_ = 0;
    uint8_t goldenCrc_ = 0;
    size_t inputIdx_ = 0;

    unsigned lastDiePc_ = kNoPc;
    uint64_t frozen_ = 0;

    Checkpoint cp_;
    unsigned instrSinceCp_ = 0;
    unsigned retriesSinceCp_ = 0;
    bool recoveryActed_ = false;

    CheckedRunResult res_;
};

} // namespace

CheckedRunResult
runChecked(Netlist &die, const Program &prog,
           const std::vector<uint8_t> &inputs,
           const CheckedRunConfig &cfg, const FaultSchedule &schedule)
{
    CheckedRunner runner(die, prog, inputs, cfg, schedule);
    return runner.run();
}

PrescreenResult
prescreenSchedules(const Netlist &golden_netlist, const Program &prog,
                   const std::vector<uint8_t> &inputs,
                   const CheckedRunConfig &cfg,
                   const std::vector<const FaultSchedule *> &schedules,
                   const std::vector<const std::vector<StuckFault> *>
                       *laneFaults,
                   bool captureEndState)
{
    // One bit-parallel mirror of CheckedRunner::stepInstruction()
    // with all protection stripped: flips before each fetch, per-lane
    // fetch from the lane's own PC pads, per-lane frozen-PC tracking,
    // and the boundary PC/OPORT compare against one shared golden
    // trajectory. Any deviation retires the lane to the scalar path,
    // so the shared state below (held input, MMU page) only ever has
    // to be correct for lanes that are still tracking golden exactly.
    unsigned lanes = static_cast<unsigned>(schedules.size());
    if (lanes == 0 || lanes > LaneGroup::kMaxLanes)
        fatal("prescreenSchedules: bad lane count %u", lanes);
    LaneGroup batch(golden_netlist, lanes);

    bool wide = cfg.isa == IsaKind::ExtAcc4 ||
                cfg.isa == IsaKind::LoadStore4;
    bool wordPc = cfg.isa == IsaKind::LoadStore4;
    unsigned width = isaDataWidth(cfg.isa);
    BusHandle pcBus = golden_netlist.outputBus("pc", 7);
    BusHandle instrBus =
        golden_netlist.inputBus("instr", wide ? 16 : 8);
    BusHandle iportBus = golden_netlist.inputBus("iport", width);
    BusHandle oportBus = golden_netlist.outputBus("oport", width);

    bool multiPage = prog.numPages() > 1;
    HeldInputEnv env;
    std::unique_ptr<PagedEnvironment> paged;
    if (multiPage)
        paged = std::make_unique<PagedEnvironment>(env);
    TimingConfig tcfg;
    tcfg.isa = cfg.isa;
    CoreSim golden(tcfg, prog,
                   paged ? static_cast<Environment &>(*paged)
                         : static_cast<Environment &>(env));

    uint64_t maxCycles = cfg.maxCycles
                             ? cfg.maxCycles
                             : cfg.maxInstructions * 8 + 1024;

    if (laneFaults && laneFaults->size() != schedules.size())
        fatal("prescreenSchedules: %zu fault lists for %zu lanes",
              laneFaults->size(), schedules.size());

    size_t numDffs = batch.numDffs();
    std::vector<std::vector<FaultSchedule::DffFlip>> flips(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
        if (laneFaults && (*laneFaults)[lane])
            for (const StuckFault &f : *(*laneFaults)[lane])
                batch.injectFault(lane, f);
        for (const auto &t : schedules[lane]->transients)
            batch.injectTransient(lane, t);
        flips[lane] = schedules[lane]->flips;
        std::sort(flips[lane].begin(), flips[lane].end(),
                  [](const FaultSchedule::DffFlip &a,
                     const FaultSchedule::DffFlip &b) {
                      return a.cycle < b.cycle;
                  });
    }
    std::array<size_t, LaneGroup::kMaxLanes> flipIdx{};

    // A clean lane emits golden's exact output values, so one shared
    // mirror MMU fed those values reproduces every clean lane's page
    // trajectory; a lane whose value differs is retired the same
    // instruction by the pad compare below.
    Mmu mirrorMmu;
    unsigned mirrorPage = 0;
    static const std::vector<uint8_t> kUnmappedPage;

    std::array<uint64_t, LaneGroup::kMaxWords> active{};
    for (unsigned w = 0; w < batch.words(); ++w)
        active[w] = batch.laneMaskWord(w);
    auto anyActive = [&]() {
        for (uint64_t m : active)
            if (m)
                return true;
        return false;
    };
    std::array<uint8_t, LaneGroup::kMaxLanes> diePc{};
    std::array<uint32_t, LaneGroup::kMaxLanes> dieInstr16{};
    std::vector<uint8_t> fetchTable;
    unsigned fetchTablePage = ~0u;
    std::array<uint32_t, LaneGroup::kMaxLanes> lastPc;
    lastPc.fill(kNoPc);
    std::array<uint64_t, LaneGroup::kMaxLanes> frozen{};
    size_t inputIdx = 0;

    // Post-edge pad sampling only reads the PC/OPORT pads, so the
    // post-clock evaluate narrows to their fan-in cones.
    LaneGroup::PadCone padCone = batch.padCone({&pcBus, &oportBus});

    PrescreenResult res;
    uint64_t instructions = 0;

    auto isDone = [&]() {
        if (golden.halted())
            return true;
        return cfg.targetOutputs != 0 &&
               env.outputs.size() >= cfg.targetOutputs;
    };

    while (true) {
        if (isDone()) {
            res.completed = true;
            break;
        }
        if (instructions >= cfg.maxInstructions ||
            res.cycles >= maxCycles)
            break;
        if (!anyActive())
            break;

        const std::vector<uint8_t> &gimage =
            prog.page(golden.page());
        DecodeResult dec = decodeAt(cfg.isa, gimage, golden.pc());
        if (readsInput(dec.inst) && inputIdx < inputs.size())
            env.held = inputs[inputIdx++] &
                       static_cast<uint8_t>((1u << width) - 1u);

        const std::vector<uint8_t> &dimage =
            mirrorPage < prog.numPages() ? prog.page(mirrorPage)
                                         : kUnmappedPage;
        auto fetch = [&](unsigned addr) -> uint8_t {
            return addr < dimage.size() ? dimage[addr] : 0;
        };
        if (!wide && fetchTablePage != mirrorPage) {
            // Narrow fetch goes through the fused indexed drive;
            // (re)pad the current page to the PC address space when
            // the mirror MMU pages (out-of-image fetches read 0).
            fetchTable.assign(size_t(1) << pcBus.width(), 0);
            for (size_t a = 0;
                 a < fetchTable.size() && a < dimage.size(); ++a)
                fetchTable[a] = dimage[a];
            fetchTablePage = mirrorPage;
        }

        unsigned cycles = wide ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            for (unsigned lane = 0; lane < lanes; ++lane) {
                while (flipIdx[lane] < flips[lane].size() &&
                       flips[lane][flipIdx[lane]].cycle <=
                           batch.cycle()) {
                    if (numDffs)
                        batch.flipDff(lane,
                                      flips[lane][flipIdx[lane]].dff %
                                          numDffs);
                    ++flipIdx[lane];
                }
            }
            if (wide) {
                batch.gatherBusBytes(pcBus, diePc.data());
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    unsigned base = wordPc ? diePc[lane] * 2
                                           : diePc[lane];
                    dieInstr16[lane] =
                        fetch(base) |
                        static_cast<unsigned>(fetch(base + 1)) << 8;
                }
                batch.setBusLanes(instrBus, dieInstr16.data());
            } else {
                batch.driveBusFromTable(pcBus, instrBus,
                                        fetchTable.data());
            }
            batch.setBus(iportBus, env.held);
            batch.evaluate();
            batch.clockEdge();
            batch.exposeState(padCone);   // new state on the pads
            ++res.cycles;

            // Frozen-PC tracking is only consumed by the watchdog
            // retire below; with no watchdog armed the per-lane PC
            // gather is dead work.
            if (!cfg.detectors.watchdog)
                continue;
            batch.gatherBusBytes(pcBus, diePc.data());
            for (unsigned lane = 0; lane < lanes; ++lane) {
                uint64_t bit = 1ull << (lane % 64);
                if (!(active[lane / 64] & bit))
                    continue;
                if (diePc[lane] == lastPc[lane]) {
                    ++frozen[lane];
                } else {
                    frozen[lane] = 0;
                    lastPc[lane] = diePc[lane];
                }
                // An armed watchdog would fire here in the scalar
                // runner; that lane's trajectory is no longer the
                // unprotected one, so hand it to the scalar path.
                if (frozen[lane] ==
                    cfg.detectors.watchdogCycles + 1)
                    active[lane / 64] &= ~bit;
            }
        }

        uint64_t prevIo = golden.stats().ioWrites;
        uint64_t prevTb = golden.stats().takenBranches;
        golden.step();
        ++instructions;

        if (multiPage) {
            if (golden.stats().ioWrites != prevIo)
                (void)mirrorMmu.onOutput(
                    static_cast<uint8_t>(golden.outputLatch()));
            if (golden.stats().takenBranches != prevTb) {
                int p = mirrorMmu.takePendingPage();
                if (p >= 0)
                    mirrorPage = static_cast<unsigned>(p);
            }
        }

        // Boundary compare in the bit domain: clearing an already
        // retired lane's bit is a no-op, so no per-lane active test
        // is needed.
        std::array<uint64_t, LaneGroup::kMaxWords> pcDiff;
        std::array<uint64_t, LaneGroup::kMaxWords> opDiff;
        batch.busMismatch(pcBus, golden.pc(), pcDiff.data());
        batch.busMismatch(oportBus, golden.outputLatch(),
                          opDiff.data());
        for (unsigned w = 0; w < batch.words(); ++w)
            active[w] &= ~(pcDiff[w] | opDiff[w]);
    }

    if (res.completed) {
        res.cleanMask = active;
        if (captureEndState) {
            res.endDff.resize(lanes);
            for (unsigned lane = 0; lane < lanes; ++lane)
                res.endDff[lane] = batch.saveDffState(lane);
        }
    }
    return res;
}

} // namespace flexi
