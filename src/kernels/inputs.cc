#include "inputs.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/golden.hh"

namespace flexi
{

std::vector<uint8_t>
kernelInputs(KernelId id, size_t work_units, uint64_t seed)
{
    Rng rng(seed ^ 0xF1E51C0DE5ull);
    std::vector<uint8_t> in;

    switch (id) {
      case KernelId::Calculator: {
        uint8_t prev_out = 0xFF;   // no previous output yet
        for (size_t i = 0; i < work_units; ++i) {
            for (;;) {
                uint8_t op = static_cast<uint8_t>(rng.below(4));
                uint8_t a = static_cast<uint8_t>(rng.below(16));
                uint8_t b = static_cast<uint8_t>(
                    op == 3 ? 1 + rng.below(15) : rng.below(16));
                auto out = goldenCalculator(static_cast<CalcOp>(op),
                                            a, b);
                // Keep the reserved pager prefix {0xA, 0x5} out of
                // the output stream (see header).
                bool clash = (out[0] == 0xA && out[1] == 0x5) ||
                             (prev_out == 0xA && out[0] == 0x5);
                if (clash)
                    continue;
                in.push_back(op);
                in.push_back(a);
                in.push_back(b);
                prev_out = out[1];
                break;
            }
        }
        return in;
      }
      case KernelId::DecisionTree:
        for (size_t i = 0; i < work_units * 3; ++i)
            in.push_back(static_cast<uint8_t>(rng.below(8)));
        return in;
      case KernelId::FirFilter:
        for (size_t i = 0; i < work_units; ++i)
            in.push_back(static_cast<uint8_t>(rng.below(16)));
        return in;
      case KernelId::IntAvg:
        // 3-bit sensor samples (Table 1's low-precision inputs) so
        // the exponential smoothing stays exact in 4 bits.
        for (size_t i = 0; i < work_units; ++i)
            in.push_back(static_cast<uint8_t>(rng.below(8)));
        return in;
      case KernelId::Thresholding:
        // Full 4-bit range (the kernels use full-range compares).
        for (size_t i = 0; i < work_units; ++i)
            in.push_back(static_cast<uint8_t>(rng.below(16)));
        return in;
      case KernelId::ParityCheck:
        for (size_t i = 0; i < work_units * 2; ++i)
            in.push_back(static_cast<uint8_t>(rng.below(16)));
        return in;
      case KernelId::XorShift8:
        for (size_t i = 0; i < work_units; ++i) {
            uint8_t s = static_cast<uint8_t>(1 + rng.below(255));
            in.push_back(s & 0xF);
            in.push_back(s >> 4);
        }
        return in;
      default:
        panic("kernelInputs: bad kernel");
    }
}

std::vector<uint8_t>
exhaustiveCalculatorInputs(uint8_t op)
{
    std::vector<uint8_t> in;
    uint8_t prev_out = 0xFF;
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            if (op == 3 && b == 0)
                continue;   // non-zero divisor (Section 5.1)
            auto out = goldenCalculator(static_cast<CalcOp>(op),
                                        static_cast<uint8_t>(a),
                                        static_cast<uint8_t>(b));
            bool clash = (out[0] == 0xA && out[1] == 0x5) ||
                         (prev_out == 0xA && out[0] == 0x5);
            if (clash)
                continue;   // reserved pager prefix; skip this pair
            in.push_back(op);
            in.push_back(static_cast<uint8_t>(a));
            in.push_back(static_cast<uint8_t>(b));
            prev_out = out[1];
        }
    }
    return in;
}

} // namespace flexi
