#include "runner.hh"

#include <memory>

#include "analysis/program_lint.hh"
#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "kernels/inputs.hh"
#include "sim/mmu.hh"

namespace flexi
{

KernelRun
runKernelOnInputs(KernelId id, const TimingConfig &cfg,
                  const std::vector<uint8_t> &inputs,
                  uint64_t max_instructions)
{
    unsigned per_in = kernelInputsPerWork(id);
    unsigned per_out = kernelOutputsPerWork(id);
    if (inputs.size() % per_in)
        fatal("%s consumes %u inputs per work unit", kernelName(id),
              per_in);
    size_t work = inputs.size() / per_in;

    Program prog = assemble(cfg.isa, kernelSource(id, cfg.isa));

#ifndef NDEBUG
    // Debug builds refuse to simulate a kernel the linter rejects;
    // a broken kernel fails loudly here instead of producing a
    // mysteriously wrong output stream downstream.
    if (LintReport rep = lintProgram(prog); rep.errors() > 0)
        panic("%s/%s fails program lint:\n%s", kernelName(id),
              isaName(cfg.isa), rep.text("flexilint").c_str());
#endif

    FifoEnvironment io;
    io.pushInputs(inputs);
    std::unique_ptr<PagedEnvironment> paged;
    Environment *env = &io;
    if (prog.numPages() > 1) {
        paged = std::make_unique<PagedEnvironment>(io);
        env = paged.get();
    }

    CoreSim sim(cfg, prog, *env);
    KernelRun run;
    run.stop = sim.runUntilOutputs(
        [&] { return io.outputs().size(); }, work * per_out,
        max_instructions);
    run.stats = sim.stats();
    run.outputs = io.outputs();
    run.staticInstructions = prog.staticInstructions();
    run.codeSizeBits = prog.codeSizeBits();
    run.pages = prog.numPages();
    return run;
}

KernelRun
runKernel(KernelId id, const TimingConfig &cfg, size_t work_units,
          uint64_t seed, uint64_t max_instructions)
{
    return runKernelOnInputs(id, cfg, kernelInputs(id, work_units, seed),
                             max_instructions);
}

} // namespace flexi
