/**
 * @file
 * Benchmark kernels for the LoadStore4 (two-address) ISA.
 *
 * The second operand removes most of the accumulator shuffling;
 * instruction count drops further than ExtAcc4, at the cost of
 * 16-bit instructions (the Figure 12 code-density trade-off).
 * Registers: r0 = input bus, r1 = output bus, r2..r7 general.
 */

#include <string>

#include "common/logging.hh"
#include "kernels/sources.hh"

namespace flexi
{

namespace
{

/** MMU escape triple — movi to r1 drives the output bus directly. */
std::string
pageEscape(unsigned page)
{
    return strfmt("movi r1, 10\nmovi r1, 5\nmovi r1, %u\n", page);
}

std::string
thresholdingSrc()
{
    // Full-range compare via sub's borrow, as on ExtAcc4.
    return strfmt(
        "loop: mov r2, r0\n"
        "movi r3, %u\n"
        "sub r3, r2\n"          // threshold - x
        "movi r4, 0\n"
        "adci r4, 0\n"
        "br.z exceed\n"
        "movi r1, 0\n"
        "br.nzp loop\n"
        "exceed: mov r1, r2\n"
        "br.nzp loop\n",
        kThreshold);
}

std::string
intAvgSrc()
{
    return
        "movi r2, 0\n"
        "loop: mov r3, r0\n"
        "add r3, r2\n"
        "lsri r3, 1\n"
        "mov r2, r3\n"
        "mov r1, r3\n"
        "br.nzp loop\n";
}

std::string
firSrc()
{
    return
        "movi r2, 0\nmovi r3, 0\nmovi r4, 0\n"
        "loop: mov r5, r0\n"
        "mov r6, r5\n"
        "sub r6, r2\n"
        "add r6, r3\n"
        "sub r6, r4\n"
        "mov r1, r6\n"
        "mov r4, r3\n"
        "mov r3, r2\n"
        "mov r2, r5\n"
        "br.nzp loop\n";
}

std::string
paritySrc()
{
    return
        "loop: mov r2, r0\n"
        "mov r3, r0\n"
        "xor r2, r3\n"
        "mov r3, r2\n"
        "lsri r3, 2\n"
        "xor r2, r3\n"
        "mov r3, r2\n"
        "lsri r3, 1\n"
        "xor r2, r3\n"
        "andi r2, 1\n"
        "mov r1, r2\n"
        "br.nzp loop\n";
}

std::string
xorShiftSrc()
{
    return
        "loop: mov r2, r0\n"           // lo
        "mov r3, r0\n"                 // hi
        // (a) hi ^= (lo & 1) << 3
        "mov r4, r2\n"
        "andi r4, 1\n"
        "br.z a_done\n"
        "movi r4, 8\n"
        "xor r3, r4\n"
        "a_done:\n"
        // (b) lo ^= hi >> 1
        "mov r4, r3\n"
        "lsri r4, 1\n"
        "xor r2, r4\n"
        // (c) t_hi = ((hi << 3) | (lo >> 1)) & 0xF; t_lo = (lo&1)<<3
        "mov r4, r2\n"
        "lsri r4, 1\n"
        "mov r5, r3\n"
        "andi r5, 1\n"
        "br.z c_skip\n"
        "movi r5, 8\n"
        "xor r4, r5\n"
        "c_skip:\n"
        "mov r5, r2\n"
        "andi r5, 1\n"
        "br.z d_zero\n"
        "movi r5, 8\n"
        "br.nzp d_done\n"
        "d_zero: movi r5, 0\n"
        "d_done:\n"
        "xor r3, r4\n"
        "xor r2, r5\n"
        "mov r1, r2\n"
        "mov r1, r3\n"
        "br.nzp loop\n";
}

std::string
decisionTreeSrc()
{
    const DecisionTree &tree = benchmarkTree();
    auto nodeTest = [&](unsigned node, const std::string &left) {
        const DecisionTree::Node &n = tree.nodes[node];
        return strfmt("mov r5, r%u\nmovi r6, %u\nsub r5, r6\n"
                      "br.n %s\n", 2 + n.feature, n.threshold + 1,
                      left.c_str());
    };

    std::string s;
    s += "loop: mov r2, r0\nmov r3, r0\nmov r4, r0\n";
    s += nodeTest(0, "n1");
    s += nodeTest(2, "go4");
    s += pageEscape(4) + "br.nzp @sub6\n";
    s += "go4: " + pageEscape(3) + "br.nzp @sub5\n";
    s += "n1: " + nodeTest(1, "go1");
    s += pageEscape(2) + "br.nzp @sub4\n";
    s += "go1: " + pageEscape(1) + "br.nzp @sub3\n";

    for (unsigned st = 0; st < 4; ++st) {
        unsigned k = 3 + st;
        unsigned page = 1 + st;
        unsigned l = 2 * k + 1, r = 2 * k + 2;
        auto leaf = [&](unsigned node, bool left) {
            return tree.leaves[2 * node + (left ? 1 : 2) - 15];
        };
        std::string pfx = strfmt("p%u", page);
        s += strfmt(".page %u\n", page);
        s += strfmt("sub%u: ", k) + nodeTest(k, pfx + "_l");
        s += nodeTest(r, pfx + "_rl");
        s += strfmt("movi r1, %u\nbr.nzp %s_ret\n", leaf(r, false),
                    pfx.c_str());
        s += pfx + "_rl: " +
             strfmt("movi r1, %u\nbr.nzp %s_ret\n", leaf(r, true),
                    pfx.c_str());
        s += pfx + "_l: " + nodeTest(l, pfx + "_ll");
        s += strfmt("movi r1, %u\nbr.nzp %s_ret\n", leaf(l, false),
                    pfx.c_str());
        s += pfx + "_ll: " +
             strfmt("movi r1, %u\nbr.nzp %s_ret\n", leaf(l, true),
                    pfx.c_str());
        s += pfx + "_ret: " + pageEscape(0) + "br.nzp @loop\n";
    }
    return s;
}

std::string
calculatorSrc()
{
    std::string s;
    s += "loop: mov r6, r0\n";
    s += "mov r2, r0\n";
    s += "mov r3, r0\n";
    s += "addi r6, 15\nbr.n do_add\n";    // 15 == -1 mod 16
    s += "addi r6, 15\nbr.n do_sub\n";
    s += "addi r6, 15\nbr.n go_mul\n";
    s += pageEscape(2) + "br.nzp @div\n";
    s += "go_mul: " + pageEscape(1) + "br.nzp @mul\n";

    s += "do_add: mov r4, r2\n";
    s += "add r4, r3\n";
    s += "mov r1, r4\n";
    s += "movi r4, 0\nadci r4, 0\nmov r1, r4\n";
    s += "br.nzp loop\n";

    s += "do_sub: mov r4, r2\n";
    s += "sub r4, r3\n";
    s += "mov r1, r4\n";
    s += "movi r4, 0\nadci r4, 0\nxori r4, 1\nmov r1, r4\n";
    s += "br.nzp loop\n";

    s += ".page 1\n";
    s += "mul: movi r4, 0\nmovi r5, 0\nmovi r7, 12\n";
    s += "mul_loop:\n";
    s += "add r4, r4\n";                  // plo <<= 1, carry out
    s += "adc r5, r5\n";                  // phi = 2*phi + carry
    s += "mov r6, r3\n";                  // flags from b
    s += "br.n mul_add\n";
    s += "br.nzp mul_next\n";
    s += "mul_add: add r4, r2\nadci r5, 0\n";
    s += "mul_next: add r3, r3\n";
    s += "addi r7, 1\n";
    s += "br.n mul_loop\n";
    s += "mov r1, r4\nmov r1, r5\n";
    s += pageEscape(0) + "br.nzp @loop\n";

    s += ".page 2\n";
    s += "div: mov r5, r3\nbr.z div_by0\n";
    s += "movi r4, 0\n";
    s += "mov r5, r2\n";
    s += "div_loop: mov r6, r5\nsub r6, r3\n";
    s += "movi r7, 0\nadci r7, 0\nbr.z div_done\n";
    s += "mov r5, r6\n";
    s += "addi r4, 1\n";
    s += "br.nzp div_loop\n";
    s += "div_done: mov r1, r4\nmov r1, r5\n";
    s += pageEscape(0) + "br.nzp @loop\n";
    s += "div_by0: movi r1, 15\nmovi r1, 15\n";
    s += pageEscape(0) + "br.nzp @loop\n";
    return s;
}

} // namespace

std::string
lsSource(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return calculatorSrc();
      case KernelId::FirFilter: return firSrc();
      case KernelId::DecisionTree: return decisionTreeSrc();
      case KernelId::IntAvg: return intAvgSrc();
      case KernelId::Thresholding: return thresholdingSrc();
      case KernelId::ParityCheck: return paritySrc();
      case KernelId::XorShift8: return xorShiftSrc();
      default:
        panic("lsSource: bad kernel");
    }
}

} // namespace flexi
