#include "common/logging.hh"
#include "kernels/sources.hh"

namespace flexi
{

std::string
kernelSource(KernelId id, IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4:
        return fc4Source(id);
      case IsaKind::ExtAcc4:
        return extSource(id);
      case IsaKind::LoadStore4:
        return lsSource(id);
      case IsaKind::FlexiCore8:
        fatal("the kernel suite targets the 4-bit cores "
              "(the paper evaluates FlexiCore4, Section 5.2)");
    }
    panic("kernelSource: bad isa");
}

} // namespace flexi
