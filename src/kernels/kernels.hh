/**
 * @file
 * The benchmark kernel suite (Table 6 of the paper).
 *
 * Seven kernels representative of flexible-electronics workloads:
 *
 *  | Kernel       | Type        | I/O per unit of work            |
 *  |--------------|-------------|---------------------------------|
 *  | Calculator   | interactive | in: op,a,b; out: 2 result words |
 *  | Four-tap FIR | streaming   | in: x; out: filtered y          |
 *  | DecisionTree | reactive    | in: 3 features; out: class      |
 *  | IntAvg       | streaming   | in: x; out: smoothed y          |
 *  | Thresholding | streaming   | in: x; out: x if x>5 else 0     |
 *  | ParityCheck  | reactive    | in: lo,hi nibbles; out: parity  |
 *  | XorShift8    | reactive    | in: seed lo,hi; out: lo,hi/step |
 *
 * Each kernel has hand-written assembly for the base FlexiCore4 ISA
 * and for the two DSE ISAs (ExtAcc4 and LoadStore4), plus a C++
 * golden model. Kernels larger than one 128-instruction page
 * (Calculator, Decision Tree) use the off-chip MMU escape protocol.
 *
 * Domain notes (4-bit datapath): IntAvg smooths modulo 16 (exact
 * for samples in 0..7, the generator's domain); Thresholding and the
 * Calculator handle the full 4-bit range (full-range unsigned
 * compares); division by zero returns the error marker 0xF,0xF.
 */

#ifndef FLEXI_KERNELS_KERNELS_HH
#define FLEXI_KERNELS_KERNELS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace flexi
{

/** Kernel identifiers, in the paper's Table 6 order. */
enum class KernelId : uint8_t
{
    Calculator,
    FirFilter,
    DecisionTree,
    IntAvg,
    Thresholding,
    ParityCheck,
    XorShift8,
    NumKernels,
};

constexpr size_t kNumKernels =
    static_cast<size_t>(KernelId::NumKernels);

/** All kernels, for iteration. */
std::array<KernelId, kNumKernels> allKernels();

/** Human-readable name. */
const char *kernelName(KernelId id);

/** Inputs consumed per unit of work (query/sample). */
unsigned kernelInputsPerWork(KernelId id);

/** Outputs produced per unit of work. */
unsigned kernelOutputsPerWork(KernelId id);

/**
 * Assembly source for @p id on @p isa. Fatal if the combination is
 * unsupported (all seven kernels support FlexiCore4, ExtAcc4 and
 * LoadStore4).
 */
std::string kernelSource(KernelId id, IsaKind isa);

/** Threshold used by the Thresholding kernel (output iff x > 5). */
constexpr uint8_t kThreshold = 5;

/** XorShift8 shift triple (full period 255): s^=s<<7; s^=s>>5; s^=s<<3. */
constexpr unsigned kXsA = 7, kXsB = 5, kXsC = 3;

/**
 * The randomly generated depth-four decision tree over 3 features
 * (Section 5.1). Nodes are stored in heap order (children of i are
 * 2i+1 / 2i+2); the walk goes left when f[feature] <= threshold.
 */
struct DecisionTree
{
    struct Node
    {
        uint8_t feature;     ///< 0..2
        uint8_t threshold;   ///< 0..6 (features are 3-bit)
    };

    std::array<Node, 15> nodes;
    std::array<uint8_t, 16> leaves;   ///< class labels, 0..7

    /** Deterministically generate a tree from a seed. */
    static DecisionTree random(uint64_t seed);

    /** Golden classification. */
    uint8_t classify(const std::array<uint8_t, 3> &features) const;
};

/** The tree instance used by kernel sources and golden model alike. */
const DecisionTree &benchmarkTree();

} // namespace flexi

#endif // FLEXI_KERNELS_KERNELS_HH
