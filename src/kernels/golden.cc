#include "golden.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace flexi
{

uint8_t
xorShiftStep(uint8_t s)
{
    s ^= static_cast<uint8_t>(s << kXsA);
    s ^= static_cast<uint8_t>(s >> kXsB);
    s ^= static_cast<uint8_t>(s << kXsC);
    return s;
}

std::vector<uint8_t>
goldenCalculator(CalcOp op, uint8_t a, uint8_t b)
{
    a &= 0xF;
    b &= 0xF;
    switch (op) {
      case CalcOp::Add: {
        unsigned s = a + b;
        return {static_cast<uint8_t>(s & 0xF),
                static_cast<uint8_t>(s >> 4)};
      }
      case CalcOp::Sub: {
        unsigned d = (a - b) & 0xF;
        return {static_cast<uint8_t>(d),
                static_cast<uint8_t>(a < b ? 1 : 0)};
      }
      case CalcOp::Mul: {
        unsigned p = a * b;
        return {static_cast<uint8_t>(p & 0xF),
                static_cast<uint8_t>(p >> 4)};
      }
      case CalcOp::Div: {
        if (b == 0)
            return {0xF, 0xF};   // architected error marker
        return {static_cast<uint8_t>(a / b),
                static_cast<uint8_t>(a % b)};
      }
    }
    panic("goldenCalculator: bad op");
}

std::vector<uint8_t>
goldenFir(const std::vector<uint8_t> &xs)
{
    std::vector<uint8_t> out;
    out.reserve(xs.size());
    uint8_t x1 = 0, x2 = 0, x3 = 0;
    for (uint8_t x : xs) {
        uint8_t x0 = x & 0xF;
        out.push_back(static_cast<uint8_t>((x0 - x1 + x2 - x3) & 0xF));
        x3 = x2;
        x2 = x1;
        x1 = x0;
    }
    return out;
}

std::vector<uint8_t>
goldenIntAvg(const std::vector<uint8_t> &xs)
{
    std::vector<uint8_t> out;
    out.reserve(xs.size());
    uint8_t y = 0;
    for (uint8_t x : xs) {
        y = static_cast<uint8_t>((((x & 0xF) + y) & 0xF) >> 1);
        out.push_back(y);
    }
    return out;
}

std::vector<uint8_t>
goldenThreshold(const std::vector<uint8_t> &xs)
{
    std::vector<uint8_t> out;
    out.reserve(xs.size());
    for (uint8_t x : xs) {
        uint8_t v = x & 0xF;
        out.push_back(v > kThreshold ? v : 0);
    }
    return out;
}

std::vector<uint8_t>
goldenParity(const std::vector<uint8_t> &nibbles)
{
    if (nibbles.size() % 2)
        fatal("parity inputs must come in (lo, hi) pairs");
    std::vector<uint8_t> out;
    for (size_t i = 0; i < nibbles.size(); i += 2) {
        unsigned word = (nibbles[i] & 0xF) |
                        ((nibbles[i + 1] & 0xF) << 4);
        out.push_back(static_cast<uint8_t>(parity(word, 8)));
    }
    return out;
}

std::vector<uint8_t>
goldenXorShift(uint8_t lo, uint8_t hi, unsigned steps)
{
    uint8_t s = static_cast<uint8_t>((lo & 0xF) | (hi << 4));
    std::vector<uint8_t> out;
    out.reserve(steps * 2);
    for (unsigned i = 0; i < steps; ++i) {
        s = xorShiftStep(s);
        out.push_back(s & 0xF);
        out.push_back(s >> 4);
    }
    return out;
}

std::vector<uint8_t>
goldenOutputs(KernelId id, const std::vector<uint8_t> &inputs)
{
    unsigned per = kernelInputsPerWork(id);
    if (inputs.size() % per)
        fatal("%s consumes %u inputs per work unit; %zu given",
              kernelName(id), per, inputs.size());

    switch (id) {
      case KernelId::Calculator: {
        std::vector<uint8_t> out;
        for (size_t i = 0; i < inputs.size(); i += 3) {
            auto r = goldenCalculator(
                static_cast<CalcOp>(inputs[i] & 0x3), inputs[i + 1],
                inputs[i + 2]);
            out.insert(out.end(), r.begin(), r.end());
        }
        return out;
      }
      case KernelId::FirFilter:
        return goldenFir(inputs);
      case KernelId::DecisionTree: {
        std::vector<uint8_t> out;
        for (size_t i = 0; i < inputs.size(); i += 3) {
            out.push_back(benchmarkTree().classify(
                {static_cast<uint8_t>(inputs[i] & 0x7),
                 static_cast<uint8_t>(inputs[i + 1] & 0x7),
                 static_cast<uint8_t>(inputs[i + 2] & 0x7)}));
        }
        return out;
      }
      case KernelId::IntAvg:
        return goldenIntAvg(inputs);
      case KernelId::Thresholding:
        return goldenThreshold(inputs);
      case KernelId::ParityCheck:
        return goldenParity(inputs);
      case KernelId::XorShift8: {
        std::vector<uint8_t> out;
        for (size_t i = 0; i < inputs.size(); i += 2) {
            auto r = goldenXorShift(inputs[i], inputs[i + 1], 1);
            out.insert(out.end(), r.begin(), r.end());
        }
        return out;
      }
      default:
        panic("goldenOutputs: bad kernel");
    }
}

} // namespace flexi
