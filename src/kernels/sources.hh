/**
 * @file
 * Internal: per-ISA kernel assembly sources.
 */

#ifndef FLEXI_KERNELS_SOURCES_HH
#define FLEXI_KERNELS_SOURCES_HH

#include <string>

#include "kernels/kernels.hh"

namespace flexi
{

/** Base FlexiCore4 ISA sources (Section 3.3's nine instructions). */
std::string fc4Source(KernelId id);

/** ExtAcc4 (revised op set, Section 6.1) sources. */
std::string extSource(KernelId id);

/** LoadStore4 (two-address, Section 6.2) sources. */
std::string lsSource(KernelId id);

} // namespace flexi

#endif // FLEXI_KERNELS_SOURCES_HH
