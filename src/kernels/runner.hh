/**
 * @file
 * End-to-end kernel execution harness.
 *
 * Assembles a kernel for the requested ISA, wires up the IO FIFO and
 * (for multi-page programs) the off-chip MMU, runs the core until
 * the expected number of outputs is produced, and reports both the
 * output stream and the execution statistics the performance/energy
 * experiments need (Figures 8 and 11).
 */

#ifndef FLEXI_KERNELS_RUNNER_HH
#define FLEXI_KERNELS_RUNNER_HH

#include <cstdint>
#include <vector>

#include "kernels/kernels.hh"
#include "sim/core_sim.hh"

namespace flexi
{

/** Result of one kernel run. */
struct KernelRun
{
    SimStats stats;
    StopReason stop = StopReason::Budget;
    std::vector<uint8_t> outputs;
    /** Code-size metrics of the assembled program. */
    size_t staticInstructions = 0;
    size_t codeSizeBits = 0;
    unsigned pages = 0;
};

/**
 * Run @p work_units units of work of kernel @p id.
 *
 * @param cfg ISA and microarchitecture to simulate
 * @param seed input-generation seed
 * @param max_instructions dynamic instruction budget
 */
KernelRun runKernel(KernelId id, const TimingConfig &cfg,
                    size_t work_units, uint64_t seed,
                    uint64_t max_instructions = 4000000);

/** As above with a caller-provided input stream. */
KernelRun runKernelOnInputs(KernelId id, const TimingConfig &cfg,
                            const std::vector<uint8_t> &inputs,
                            uint64_t max_instructions = 4000000);

} // namespace flexi

#endif // FLEXI_KERNELS_RUNNER_HH
