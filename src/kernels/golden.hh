/**
 * @file
 * C++ golden models for every benchmark kernel.
 *
 * Each model consumes a flat input stream (the values the core would
 * read from its input bus, in order) and produces the expected output
 * stream. Assembly implementations on every ISA must match these
 * exactly; the paper's wafer test uses the same
 * golden-versus-measured criterion.
 */

#ifndef FLEXI_KERNELS_GOLDEN_HH
#define FLEXI_KERNELS_GOLDEN_HH

#include <cstdint>
#include <vector>

#include "kernels/kernels.hh"

namespace flexi
{

/** Calculator operation selectors (the first input of each query). */
enum class CalcOp : uint8_t
{
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
};

/**
 * Expected output stream of @p id for @p inputs. The stream must hold
 * a whole number of work units (kernelInputsPerWork each).
 */
std::vector<uint8_t> goldenOutputs(KernelId id,
                                   const std::vector<uint8_t> &inputs);

/** @name Individual golden models (exposed for direct unit testing) */
///@{

/** One calculator query: returns the two output nibbles. */
std::vector<uint8_t> goldenCalculator(CalcOp op, uint8_t a, uint8_t b);

/** Four-tap FIR with coefficients {+1,-1,+1,-1}, zero-initialized. */
std::vector<uint8_t> goldenFir(const std::vector<uint8_t> &xs);

/** Exponential smoothing y' = ((x + y) & 0xF) >> 1, y0 = 0. */
std::vector<uint8_t> goldenIntAvg(const std::vector<uint8_t> &xs);

/** Thresholding: out = x if x > kThreshold else 0 (domain 0..13). */
std::vector<uint8_t> goldenThreshold(const std::vector<uint8_t> &xs);

/** Parity of the 8-bit word formed from (lo, hi) nibble pairs. */
std::vector<uint8_t> goldenParity(const std::vector<uint8_t> &nibbles);

/**
 * XorShift8: seeded from (lo, hi), emits (lo, hi) per step for
 * @p steps steps using the (7,5,3) triple.
 */
std::vector<uint8_t> goldenXorShift(uint8_t lo, uint8_t hi,
                                    unsigned steps);

/** One xorshift step on the full byte. */
uint8_t xorShiftStep(uint8_t s);

///@}

} // namespace flexi

#endif // FLEXI_KERNELS_GOLDEN_HH
