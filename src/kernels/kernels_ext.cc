/**
 * @file
 * Benchmark kernels for the ExtAcc4 (revised-op-set) ISA.
 *
 * The Section 6.1 extensions collapse the base ISA's painful idioms:
 * lsri/asri replace the ~30-instruction HALVE dance, sub/swb replace
 * negate-and-add, the carry flag plus adc makes multi-word arithmetic
 * direct, br.z/br.p give free zero tests, and call/ret enable
 * subroutines. The resulting code-size collapse is Figure 10.
 */

#include <string>

#include "common/logging.hh"
#include "kernels/sources.hh"

namespace flexi
{

namespace
{

/** Load a 4-bit constant (li covers 0..7; bigger needs addi steps). */
std::string
constAcc(unsigned k)
{
    k &= 0xF;
    if (k <= 7)
        return strfmt("li %u\n", k);
    return strfmt("li %u\naddi 3\naddi 3\naddi 2\n", k - 8);
}

/** Subtract a small constant from ACC (addi immediates are -4..3). */
std::string
subConst(unsigned k)
{
    std::string s;
    while (k > 4) {
        s += "addi -4\n";
        k -= 4;
    }
    if (k)
        s += strfmt("addi -%u\n", k);
    return s;
}

/** MMU escape triple. */
std::string
pageEscape(unsigned page)
{
    return constAcc(0xA) + "store r1\n" + constAcc(0x5) +
           "store r1\n" + constAcc(page) + "store r1\n";
}

std::string
thresholdingSrc()
{
    // Full-range compare: sub's borrow (inverted carry) answers
    // threshold < x directly — the data-coalescing win.
    std::string s;
    s += "loop: load r0\n";
    s += "store r2\n";
    s += strfmt("li %u\n", kThreshold);
    s += "sub r2\n";            // threshold - x; borrow iff x > thr
    s += "li 0\nadci 0\n";      // materialize carry
    s += "br.z exceed\n";       // carry 0 -> borrow -> exceed
    s += "li 0\nstore r1\n";
    s += "br.nzp loop\n";
    s += "exceed: load r2\nstore r1\n";
    s += "br.nzp loop\n";
    return s;
}

std::string
intAvgSrc()
{
    return
        "li 0\n"
        "store r2\n"
        "loop: load r0\n"
        "add r2\n"
        "lsri 1\n"
        "store r2\n"
        "store r1\n"
        "br.nzp loop\n";
}

std::string
firSrc()
{
    return
        "li 0\nstore r2\nstore r3\nstore r4\n"
        "loop: load r0\n"
        "store r5\n"
        "sub r2\n"        // x0 - x1
        "add r3\n"        // + x2
        "sub r4\n"        // - x3
        "store r1\n"
        "load r3\nstore r4\n"
        "load r2\nstore r3\n"
        "load r5\nstore r2\n"
        "br.nzp loop\n";
}

std::string
paritySrc()
{
    // Parity by xor-folding the nibble — three instructions per fold
    // step thanks to the barrel shifter.
    return
        "loop: load r0\n"
        "xor r0\n"        // v = lo ^ hi
        "store r2\n"
        "lsri 2\n"
        "xor r2\n"
        "store r2\n"
        "lsri 1\n"
        "xor r2\n"
        "andi 1\n"
        "store r1\n"
        "br.nzp loop\n";
}

std::string
xorShiftSrc()
{
    std::string s;
    s += "loop: load r0\nstore r2\n";        // lo
    s += "load r0\nstore r3\n";              // hi
    // (a) s ^= s << 7: hi ^= (lo & 1) << 3.
    s += "load r2\nandi 1\nbr.z a_done\n";
    s += constAcc(8) + "xor r3\nstore r3\n";
    s += "a_done:\n";
    // (b) s ^= s >> 5: lo ^= hi >> 1.
    s += "load r3\nlsri 1\nxor r2\nstore r2\n";
    // (c) s ^= s << 3.
    s += "load r2\nlsri 1\nstore r6\n";      // lo >> 1
    s += "load r3\nandi 1\nbr.z c_skip\n";
    s += constAcc(8) + "xor r6\nstore r6\n"; // |= (hi & 1) << 3
    s += "c_skip:\n";
    s += "load r2\nandi 1\nbr.z d_zero\n";
    s += constAcc(8) + "store r7\nbr.nzp d_done\n";
    s += "d_zero: li 0\nstore r7\n";
    s += "d_done:\n";
    s += "load r3\nxor r6\nstore r3\n";
    s += "load r2\nxor r7\nstore r2\n";
    s += "load r2\nstore r1\n";
    s += "load r3\nstore r1\n";
    s += "br.nzp loop\n";
    return s;
}

std::string
decisionTreeSrc()
{
    const DecisionTree &tree = benchmarkTree();
    auto nodeTest = [&](unsigned node, const std::string &left) {
        const DecisionTree::Node &n = tree.nodes[node];
        return strfmt("load r%u\n", 2 + n.feature) +
               subConst(n.threshold + 1) +
               strfmt("br.n %s\n", left.c_str());
    };

    std::string s;
    s += "loop: load r0\nstore r2\nload r0\nstore r3\n"
         "load r0\nstore r4\n";
    s += nodeTest(0, "n1");
    s += nodeTest(2, "go4");
    s += pageEscape(4) + "br.nzp @sub6\n";
    s += "go4: " + pageEscape(3) + "br.nzp @sub5\n";
    s += "n1: " + nodeTest(1, "go1");
    s += pageEscape(2) + "br.nzp @sub4\n";
    s += "go1: " + pageEscape(1) + "br.nzp @sub3\n";

    for (unsigned st = 0; st < 4; ++st) {
        unsigned k = 3 + st;
        unsigned page = 1 + st;
        unsigned l = 2 * k + 1, r = 2 * k + 2;
        auto leaf = [&](unsigned node, bool left) {
            return tree.leaves[2 * node + (left ? 1 : 2) - 15];
        };
        std::string pfx = strfmt("p%u", page);
        s += strfmt(".page %u\n", page);
        s += strfmt("sub%u: ", k) + nodeTest(k, pfx + "_l");
        s += nodeTest(r, pfx + "_rl");
        s += constAcc(leaf(r, false)) + "store r1\nbr.nzp " + pfx +
             "_ret\n";
        s += pfx + "_rl: " + constAcc(leaf(r, true)) +
             "store r1\nbr.nzp " + pfx + "_ret\n";
        s += pfx + "_l: " + nodeTest(l, pfx + "_ll");
        s += constAcc(leaf(l, false)) + "store r1\nbr.nzp " + pfx +
             "_ret\n";
        s += pfx + "_ll: " + constAcc(leaf(l, true)) +
             "store r1\nbr.nzp " + pfx + "_ret\n";
        s += pfx + "_ret: " + pageEscape(0) + "br.nzp @loop\n";
    }
    return s;
}

std::string
calculatorSrc()
{
    std::string s;
    s += "loop: load r0\nstore r6\n";
    s += "load r0\nstore r2\n";
    s += "load r0\nstore r3\n";
    s += "load r6\naddi -1\nbr.n do_add\n";
    s += "addi -1\nbr.n do_sub\n";
    s += "addi -1\nbr.n go_mul\n";
    s += pageEscape(2) + "br.nzp @div\n";
    s += "go_mul: " + pageEscape(1) + "br.nzp @mul\n";

    // add: the carry flag makes the second output word trivial.
    s += "do_add: load r2\nadd r3\nstore r1\n";
    s += "li 0\nadci 0\nstore r1\n";
    s += "br.nzp loop\n";
    // sub: borrow = !carry.
    s += "do_sub: load r2\nsub r3\nstore r1\n";
    s += "li 0\nadci 0\nxori 1\nstore r1\n";
    s += "br.nzp loop\n";

    // mul (page 1): left-to-right shift-and-add, adc carries the
    // cross-word bit.
    s += ".page 1\n";
    s += "mul: li 0\nstore r4\nstore r5\n";
    s += constAcc(0xC) + "store r7\n";       // counter = -4
    s += "mul_loop:\n";
    s += "load r4\nadd r4\nstore r4\n";      // plo <<= 1 (carry out)
    s += "load r5\nadc r5\nstore r5\n";      // phi = 2*phi + carry
    s += "load r3\nbr.n mul_add\n";
    s += "br.nzp mul_next\n";
    s += "mul_add: load r4\nadd r2\nstore r4\n";
    s += "load r5\nadci 0\nstore r5\n";
    s += "mul_next: load r3\nadd r3\nstore r3\n";
    s += "load r7\naddi 1\nstore r7\nbr.n mul_loop\n";
    s += "load r4\nstore r1\nload r5\nstore r1\n";
    s += pageEscape(0) + "br.nzp @loop\n";

    // div (page 2): br.z gives the zero-divisor test for free; the
    // borrow (inverted carry) of sub ends the restoring loop.
    s += ".page 2\n";
    s += "div: load r3\nbr.z div_by0\n";
    s += "li 0\nstore r4\n";
    s += "load r2\nstore r5\n";
    s += "div_loop: load r5\nsub r3\nstore r6\n";
    s += "li 0\nadci 0\nbr.z div_done\n";    // borrow -> r < b
    s += "load r6\nstore r5\n";
    s += "load r4\naddi 1\nstore r4\n";
    s += "br.nzp div_loop\n";
    s += "div_done: load r4\nstore r1\nload r5\nstore r1\n";
    s += pageEscape(0) + "br.nzp @loop\n";
    s += "div_by0: " + constAcc(0xF) + "store r1\nstore r1\n";
    s += pageEscape(0) + "br.nzp @loop\n";
    return s;
}

} // namespace

std::string
extSource(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return calculatorSrc();
      case KernelId::FirFilter: return firSrc();
      case KernelId::DecisionTree: return decisionTreeSrc();
      case KernelId::IntAvg: return intAvgSrc();
      case KernelId::Thresholding: return thresholdingSrc();
      case KernelId::ParityCheck: return paritySrc();
      case KernelId::XorShift8: return xorShiftSrc();
      default:
        panic("extSource: bad kernel");
    }
}

} // namespace flexi
