#include "fc8_programs.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace flexi
{

namespace
{

/** Unconditional branch (clobbers ACC to 0xFF). */
std::string
ubr(const std::string &target)
{
    return "nandi 0\nbr " + target + "\n";
}

/** ACC = 0 from any state (xori's 4-bit immediate sign-extends). */
std::string
zeroAcc()
{
    return "nandi 0\nxori -1\n";
}

std::string
thresholdingSrc()
{
    // Full-range 8-bit compare against 100: the MSB splits the
    // range, then an exact subtract decides (LOAD BYTE supplies the
    // wide constant the 4-bit immediates cannot).
    std::string s;
    s += "loop: load r0\n";
    s += "store r2\n";
    s += "br exceed\n";              // x >= 128 > 100
    s += strfmt("ldb 0x%02X\n", (256 - (kFc8Threshold + 1)) & 0xFF);
    s += "add r2\n";                 // x - 101
    s += "br small\n";               // negative -> x <= 100
    s += "exceed: load r2\nstore r1\n";
    s += ubr("loop");
    s += "small: " + zeroAcc() + "store r1\n";
    s += ubr("loop");
    return s;
}

std::string
paritySrc()
{
    // Eight unrolled MSB tests with doubling — the nibble trick of
    // the FlexiCore4 kernel, stretched across the octet.
    std::string s;
    s += "loop: load r0\n";
    s += "store r2\n";
    s += zeroAcc() + "store r3\n";
    for (int bit = 7; bit >= 0; --bit) {
        std::string t = strfmt("t%d", bit), c = strfmt("c%d", bit);
        s += "load r2\n";
        s += "br " + t + "\n";
        s += ubr(c);
        s += t + ": load r3\nxori 1\nstore r3\n" + ubr(c);
        s += c + ":";
        s += bit > 0 ? " load r2\nadd r2\nstore r2\n" : "\n";
    }
    s += "load r3\nstore r1\n";
    s += ubr("loop");
    return s;
}

std::string
checksumSrc()
{
    // Running mod-256 checksum — the error-detection-coding entry of
    // Table 1 in its simplest form.
    std::string s;
    s += zeroAcc() + "store r2\n";
    s += "loop: load r0\n";
    s += "add r2\n";
    s += "store r2\n";
    s += "store r1\n";
    s += ubr("loop");
    return s;
}

std::string
intAvgSrc()
{
    // Exponential smoothing with an 8-bit HALVE: seven MSB tests
    // with doubling; the running average lives in r3 (it doubles as
    // the HALVE accumulator), the shift scratch in r2 — all the
    // register pressure FlexiCore8's 2 general words allow.
    std::string s;
    s += zeroAcc() + "store r3\n";       // y = 0
    s += "loop: load r0\n";
    s += "add r3\n";                     // x + y (<= 254, exact)
    s += "store r2\n";                   // v
    s += zeroAcc() + "store r3\n";       // q = 0
    for (int bit = 7; bit >= 1; --bit) {
        std::string t = strfmt("h%d", bit), c = strfmt("g%d", bit);
        s += "load r2\n";
        s += "br " + t + "\n";
        s += ubr(c);
        s += t + strfmt(": ldb 0x%02X\nadd r3\nstore r3\n",
                        1u << (bit - 1));
        s += ubr(c);
        s += c + ": load r2\nadd r2\nstore r2\n";
    }
    s += "load r3\nstore r1\n";          // y' = (x+y) >> 1
    s += ubr("loop");
    return s;
}

} // namespace

const char *
fc8ProgramName(Fc8Program id)
{
    switch (id) {
      case Fc8Program::Thresholding: return "Thresholding8";
      case Fc8Program::Parity: return "Parity8";
      case Fc8Program::Checksum: return "Checksum8";
      case Fc8Program::IntAvg: return "IntAvg8";
      default:
        panic("fc8ProgramName: bad id");
    }
}

std::string
fc8ProgramSource(Fc8Program id)
{
    switch (id) {
      case Fc8Program::Thresholding: return thresholdingSrc();
      case Fc8Program::Parity: return paritySrc();
      case Fc8Program::Checksum: return checksumSrc();
      case Fc8Program::IntAvg: return intAvgSrc();
      default:
        panic("fc8ProgramSource: bad id");
    }
}

std::vector<uint8_t>
fc8GoldenOutputs(Fc8Program id, const std::vector<uint8_t> &in)
{
    std::vector<uint8_t> out;
    out.reserve(in.size());
    switch (id) {
      case Fc8Program::Thresholding:
        for (uint8_t x : in)
            out.push_back(x > kFc8Threshold ? x : 0);
        return out;
      case Fc8Program::Parity:
        for (uint8_t x : in)
            out.push_back(static_cast<uint8_t>(parity(x, 8)));
        return out;
      case Fc8Program::Checksum: {
        uint8_t sum = 0;
        for (uint8_t x : in) {
            sum = static_cast<uint8_t>(sum + x);
            out.push_back(sum);
        }
        return out;
      }
      case Fc8Program::IntAvg: {
        uint8_t y = 0;
        for (uint8_t x : in) {
            y = static_cast<uint8_t>(((x + y) & 0xFF) >> 1);
            out.push_back(y);
        }
        return out;
      }
      default:
        panic("fc8GoldenOutputs: bad id");
    }
}

std::vector<uint8_t>
fc8ProgramInputs(Fc8Program id, size_t work, uint64_t seed)
{
    Rng rng(seed ^ 0xFC88FC88ull);
    std::vector<uint8_t> in;
    in.reserve(work);
    // IntAvg keeps x + y below 256 by sampling 7-bit inputs.
    unsigned range = id == Fc8Program::IntAvg ? 128 : 256;
    for (size_t i = 0; i < work; ++i)
        in.push_back(static_cast<uint8_t>(rng.below(range)));
    return in;
}

} // namespace flexi
