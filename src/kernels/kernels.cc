#include "kernels.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace flexi
{

std::array<KernelId, kNumKernels>
allKernels()
{
    return {KernelId::Calculator, KernelId::FirFilter,
            KernelId::DecisionTree, KernelId::IntAvg,
            KernelId::Thresholding, KernelId::ParityCheck,
            KernelId::XorShift8};
}

const char *
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return "Calculator";
      case KernelId::FirFilter: return "Four-tap FIR";
      case KernelId::DecisionTree: return "Decision Tree";
      case KernelId::IntAvg: return "IntAvg";
      case KernelId::Thresholding: return "Thresholding";
      case KernelId::ParityCheck: return "Parity Check";
      case KernelId::XorShift8: return "XorShift8";
      default:
        panic("kernelName: bad id");
    }
}

unsigned
kernelInputsPerWork(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return 3;
      case KernelId::DecisionTree: return 3;
      case KernelId::ParityCheck: return 2;
      case KernelId::XorShift8: return 2;
      default: return 1;
    }
}

unsigned
kernelOutputsPerWork(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return 2;
      case KernelId::XorShift8: return 2;
      default: return 1;
    }
}

DecisionTree
DecisionTree::random(uint64_t seed)
{
    Rng rng(seed);
    DecisionTree tree;
    for (auto &node : tree.nodes) {
        node.feature = static_cast<uint8_t>(rng.below(3));
        node.threshold = static_cast<uint8_t>(rng.below(7));
    }
    for (auto &leaf : tree.leaves)
        leaf = static_cast<uint8_t>(rng.below(8));
    return tree;
}

uint8_t
DecisionTree::classify(const std::array<uint8_t, 3> &features) const
{
    unsigned i = 0;
    for (int depth = 0; depth < 4; ++depth) {
        const Node &n = nodes[i];
        bool left = features[n.feature] <= n.threshold;
        i = 2 * i + (left ? 1 : 2);
    }
    return leaves[i - 15];
}

const DecisionTree &
benchmarkTree()
{
    // Fixed seed: the "randomly generated depth-four decision tree"
    // of Section 5.1, shared by the assembly generators and the
    // golden model.
    static const DecisionTree tree = DecisionTree::random(0xDEC15107);
    return tree;
}

} // namespace flexi
