/**
 * @file
 * Application programs for FlexiCore8.
 *
 * The paper's kernel suite runs on FlexiCore4 (Section 5.2); these
 * FlexiCore8 programs exercise the 8-bit core's distinctive features
 * — the two-byte LOAD BYTE instruction for octet constants, the
 * sign-extended 4-bit immediates, and the brutally small 4-word data
 * memory (two general registers!) — on the same application
 * categories (Table 1).
 *
 * | Program      | I/O per work unit                               |
 * |--------------|-------------------------------------------------|
 * | Thresholding | in: sample (octet); out: sample if > 100 else 0 |
 * | Parity       | in: octet; out: parity bit                      |
 * | Checksum     | in: octet; out: running sum mod 256             |
 * | IntAvg       | in: octet (0..127); out: y' = ((x+y)&0xFF)>>1   |
 */

#ifndef FLEXI_KERNELS_FC8_PROGRAMS_HH
#define FLEXI_KERNELS_FC8_PROGRAMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flexi
{

/** FlexiCore8 demo program identifiers. */
enum class Fc8Program : uint8_t
{
    Thresholding,
    Parity,
    Checksum,
    IntAvg,
    NumPrograms,
};

constexpr size_t kNumFc8Programs =
    static_cast<size_t>(Fc8Program::NumPrograms);

const char *fc8ProgramName(Fc8Program id);

/** Assembly source (FlexiCore8 ISA). */
std::string fc8ProgramSource(Fc8Program id);

/** Threshold used by the 8-bit Thresholding program. */
constexpr uint8_t kFc8Threshold = 100;

/** Golden model: expected outputs for an input stream. */
std::vector<uint8_t> fc8GoldenOutputs(Fc8Program id,
                                      const std::vector<uint8_t> &in);

/** Seeded input stream, one octet per work unit. */
std::vector<uint8_t> fc8ProgramInputs(Fc8Program id, size_t work,
                                      uint64_t seed);

} // namespace flexi

#endif // FLEXI_KERNELS_FC8_PROGRAMS_HH
