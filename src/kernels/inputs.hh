/**
 * @file
 * Deterministic input-set generation for the kernel suite.
 *
 * "These values are based on the mean application latency given
 * uniform sampling over the input space" (Section 5.2) — the
 * generators sample uniformly from each kernel's input domain with a
 * seeded PRNG so every experiment is reproducible.
 */

#ifndef FLEXI_KERNELS_INPUTS_HH
#define FLEXI_KERNELS_INPUTS_HH

#include <cstdint>
#include <vector>

#include "kernels/kernels.hh"

namespace flexi
{

/**
 * Generate the flat input stream for @p work_units units of work of
 * kernel @p id.
 *
 * Domain notes: streaming kernels sample 3-bit sensor values;
 * Calculator draws ops uniformly with full 4-bit operands (non-zero
 * divisors, Section 5.1); query streams whose outputs would contain
 * the MMU escape prefix {0xA, 0x5} back-to-back are re-drawn, since
 * that value sequence is reserved by the off-chip pager protocol.
 */
std::vector<uint8_t> kernelInputs(KernelId id, size_t work_units,
                                  uint64_t seed);

/** Exhaustive input stream for one calculator op over all (a, b). */
std::vector<uint8_t> exhaustiveCalculatorInputs(uint8_t op);

} // namespace flexi

#endif // FLEXI_KERNELS_INPUTS_HH
