/**
 * @file
 * The world outside the core: IO buses and program paging.
 *
 * FlexiCores communicate with peripherals through a memory-mapped
 * input bus (data address 0) and output bus (data address 1), and
 * fetch instructions from off-chip program memory whose page is
 * selected by an off-chip MMU (Sections 3.3 and 5.1).
 */

#ifndef FLEXI_SIM_ENVIRONMENT_HH
#define FLEXI_SIM_ENVIRONMENT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace flexi
{

/** Abstract peripheral environment seen by a core. */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Sample the input bus (a read of data address 0). */
    virtual uint8_t readInput() = 0;

    /** Drive the output bus (a write of data address 1). */
    virtual void writeOutput(uint8_t value) = 0;

    /**
     * Called when the core takes a branch; the off-chip MMU applies
     * a pending page switch at this point ("after a short delay",
     * Section 5.1). Returns the new page, or -1 for no switch.
     */
    virtual int pageSwitchOnBranch() { return -1; }
};

/**
 * A simple peripheral model: input values come from a FIFO (the last
 * value is held once the FIFO drains, like a sensor holding its
 * reading); every output write is recorded.
 */
class FifoEnvironment : public Environment
{
  public:
    /** Queue @p values on the input bus, oldest first. */
    void pushInputs(const std::vector<uint8_t> &values);
    void pushInput(uint8_t value);

    uint8_t readInput() override;
    void writeOutput(uint8_t value) override;

    const std::vector<uint8_t> &outputs() const { return outputs_; }
    void clearOutputs() { outputs_.clear(); }
    size_t inputsRemaining() const { return fifo_.size(); }

  private:
    std::deque<uint8_t> fifo_;
    uint8_t held_ = 0;
    std::vector<uint8_t> outputs_;
};

} // namespace flexi

#endif // FLEXI_SIM_ENVIRONMENT_HH
