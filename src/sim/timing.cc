#include "timing.hh"

#include "common/logging.hh"

namespace flexi
{

const char *
microArchName(MicroArch uarch)
{
    switch (uarch) {
      case MicroArch::SingleCycle: return "single-cycle";
      case MicroArch::Pipelined2: return "2-stage";
      case MicroArch::MultiCycle: return "multicycle";
    }
    panic("microArchName: bad MicroArch");
}

void
validateTimingConfig(const TimingConfig &cfg)
{
    if (cfg.isa == IsaKind::LoadStore4 && cfg.bus == BusWidth::Narrow8 &&
        cfg.uarch != MicroArch::MultiCycle) {
        fatal("a %s load-store core cannot fetch its 16-bit "
              "instructions over an 8-bit bus (Section 6.2)",
              microArchName(cfg.uarch));
    }
}

unsigned
instructionCycles(const TimingConfig &cfg, const Instruction &inst,
                  bool branch_taken)
{
    // Cycles spent fetching this instruction.
    unsigned fetch_cycles = 1;
    if (cfg.bus == BusWidth::Narrow8)
        fetch_cycles = inst.sizeBytes();
    else if (inst.op == Op::Ldb)
        fetch_cycles = 2;   // data byte arrives on the same bus

    switch (cfg.uarch) {
      case MicroArch::SingleCycle:
        // Execution overlaps the (final) fetch cycle.
        return fetch_cycles;
      case MicroArch::Pipelined2:
        // Fetch is hidden behind the previous instruction except for
        // extra fetch beats; a taken branch flushes the fetch stage.
        return fetch_cycles + (branch_taken ? 1 : 0);
      case MicroArch::MultiCycle:
        // Separate fetch and execute states.
        return fetch_cycles + 1;
    }
    panic("instructionCycles: bad MicroArch");
}

} // namespace flexi
