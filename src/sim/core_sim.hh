/**
 * @file
 * Instruction-level simulator for all four FlexiCore-family cores.
 *
 * The simulator is architecturally faithful (the same golden model
 * that the paper's wafer test compares dies against) and carries a
 * cycle-accurate timing model for each microarchitecture so that the
 * DSE experiments (Figures 11-13) can be regenerated.
 */

#ifndef FLEXI_SIM_CORE_SIM_HH
#define FLEXI_SIM_CORE_SIM_HH

#include <array>
#include <cstdint>

#include "assembler/program.hh"
#include "isa/isa.hh"
#include "sim/environment.hh"
#include "sim/timing.hh"
#include "sim/trace.hh"

namespace flexi
{

/** Execution statistics for one run. */
struct SimStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t ioReads = 0;
    uint64_t ioWrites = 0;
    uint64_t memReads = 0;     ///< non-IO data-memory reads
    uint64_t memWrites = 0;    ///< non-IO data-memory writes
    uint64_t fetchedBytes = 0;

    double cpi() const;
};

/** Why a run() returned. */
enum class StopReason
{
    Halted,         ///< spin branch (taken branch to itself)
    Budget,         ///< instruction budget exhausted
    OutputTarget,   ///< requested number of outputs produced
};

/**
 * The core simulator. Architectural state (Section 3.3): 7-bit PC,
 * accumulator, the small data memory with IO mapped at addresses
 * 0/1, and for the DSE ISAs a carry flag and return register.
 */
class CoreSim
{
  public:
    /**
     * @param cfg ISA / microarchitecture / bus configuration
     * @param prog assembled program (fetched page-wise)
     * @param env peripheral environment (IO buses, pager)
     */
    CoreSim(const TimingConfig &cfg, const Program &prog,
            Environment &env);

    /** Execute one instruction. Returns false once halted. */
    bool step();

    /** Run until halt or @p max_instructions. */
    StopReason run(uint64_t max_instructions);

    /**
     * Run until the environment has produced @p target_outputs
     * outputs (checked via a caller-supplied counter), halt, or
     * budget. Useful for streaming kernels.
     */
    template <typename OutputCount>
    StopReason
    runUntilOutputs(OutputCount &&count, size_t target_outputs,
                    uint64_t max_instructions)
    {
        while (!halted_ && stats_.instructions < max_instructions) {
            if (count() >= target_outputs)
                return StopReason::OutputTarget;
            step();
        }
        if (count() >= target_outputs)
            return StopReason::OutputTarget;
        return halted_ ? StopReason::Halted : StopReason::Budget;
    }

    const SimStats &stats() const { return stats_; }
    bool halted() const { return halted_; }

    /** Install (or clear, with nullptr) an execution trace sink. */
    void setTraceSink(TraceSink sink) { trace_ = std::move(sink); }

    /** @name Architectural state access (for tests / tracing). */
    ///@{
    unsigned pc() const { return pc_; }
    unsigned page() const { return page_; }
    uint8_t acc() const { return acc_; }
    bool carry() const { return carry_; }
    uint8_t mem(unsigned addr) const;
    /** Value last driven onto the output bus. */
    uint8_t outputLatch() const { return outLatch_; }
    void setAcc(uint8_t v);
    void setMem(unsigned addr, uint8_t v);
    ///@}

  private:
    uint8_t readOperand(const Instruction &inst);
    uint8_t memRead(unsigned addr);
    void memWrite(unsigned addr, uint8_t value);
    void execute(const Instruction &inst);
    void redirect(unsigned target, unsigned self_addr);
    bool condHolds(uint8_t cond, uint8_t value) const;

    TimingConfig cfg_;
    const Program &prog_;
    Environment &env_;

    unsigned dataWidth_;
    uint8_t dataMask_;
    unsigned memWords_;

    unsigned pc_ = 0;
    unsigned page_ = 0;
    uint8_t acc_ = 0;
    bool carry_ = false;
    uint8_t retReg_ = 0;
    uint8_t flagsVal_ = 0;   ///< LoadStore4: last written value
    std::array<uint8_t, 8> mem_{};
    uint8_t outLatch_ = 0;

    bool halted_ = false;
    SimStats stats_;
    TraceSink trace_;
};

} // namespace flexi

#endif // FLEXI_SIM_CORE_SIM_HH
