/**
 * @file
 * Off-chip memory-management unit (program pager).
 *
 * Section 5.1: "The MMU consists of [a] finite-state transducer based
 * controller, and a four-bit register. When the controller identifies
 * a specific sequence of values on the FlexiCore's output port, it
 * stores the value of the output port into the register after a short
 * delay. This allows software to signal a 'page change' to one of
 * sixteen different 128-instruction pages, and then branch to a
 * desired location within that page."
 *
 * Our escape sequence is the triple {0xA, 0x5, page}. The "short
 * delay" is modeled by applying the page switch at the core's next
 * taken branch, so the branch instruction itself still executes from
 * the old page — exactly the software idiom the paper describes.
 * As with the paper's FST, programs must not emit that exact triple
 * as ordinary output data.
 */

#ifndef FLEXI_SIM_MMU_HH
#define FLEXI_SIM_MMU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/environment.hh"

namespace flexi
{

/** First and second values of the MMU escape sequence. */
constexpr uint8_t kMmuEscape0 = 0xA;
constexpr uint8_t kMmuEscape1 = 0x5;

/** Finite-state-transducer page controller. */
class Mmu
{
  public:
    /**
     * Feed one output-port value to the FST. Returns the values that
     * should be forwarded to the real peripheral output (escape
     * bytes are consumed; a broken escape is flushed through).
     */
    std::vector<uint8_t> onOutput(uint8_t value);

    /** Page switch armed and not yet applied? */
    bool pending() const { return pending_; }

    /** Consume the pending switch; call at a taken branch. */
    int takePendingPage();

    unsigned currentPage() const { return page_; }

    /**
     * Power-cycle the FST: back to Idle on page 0 with nothing
     * pending. Used when a checked run escalates to a restart.
     */
    void reset();

  private:
    enum class State { Idle, GotEsc0, GotEsc1 };

    State state_ = State::Idle;
    unsigned page_ = 0;
    bool pending_ = false;
    unsigned pendingPage_ = 0;
};

/**
 * Environment decorator that interposes an Mmu between the core and
 * an inner environment: escape triples select the fetch page, all
 * other output traffic passes through.
 */
class PagedEnvironment : public Environment
{
  public:
    explicit PagedEnvironment(Environment &inner);

    uint8_t readInput() override;
    void writeOutput(uint8_t value) override;
    int pageSwitchOnBranch() override;

    const Mmu &mmu() const { return mmu_; }
    Mmu &mmu() { return mmu_; }

  private:
    Environment &inner_;
    Mmu mmu_;
};

} // namespace flexi

#endif // FLEXI_SIM_MMU_HH
