#include "environment.hh"

namespace flexi
{

void
FifoEnvironment::pushInputs(const std::vector<uint8_t> &values)
{
    for (uint8_t v : values)
        fifo_.push_back(v);
}

void
FifoEnvironment::pushInput(uint8_t value)
{
    fifo_.push_back(value);
}

uint8_t
FifoEnvironment::readInput()
{
    if (!fifo_.empty()) {
        held_ = fifo_.front();
        fifo_.pop_front();
    }
    return held_;
}

void
FifoEnvironment::writeOutput(uint8_t value)
{
    outputs_.push_back(value);
}

} // namespace flexi
