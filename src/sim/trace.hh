/**
 * @file
 * Instruction-level execution tracing.
 *
 * A TraceSink receives one record per executed instruction — the
 * architectural before/after state plus the decoded instruction —
 * enabling waveform-style debugging of kernel code (flexisim -t) and
 * the trace-based tests. The textual format is stable:
 *
 *   [page:pc] disassembly | acc=.. c=. mem=........ | cyc=N
 */

#ifndef FLEXI_SIM_TRACE_HH
#define FLEXI_SIM_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace flexi
{

/** One executed instruction. */
struct TraceRecord
{
    uint64_t index = 0;       ///< dynamic instruction number
    uint64_t cycle = 0;       ///< cycle count *after* execution
    unsigned page = 0;
    unsigned pc = 0;          ///< fetch PC
    Instruction inst;
    uint8_t accBefore = 0;
    uint8_t accAfter = 0;
    bool carryAfter = false;
    bool taken = false;       ///< control transfer redirected the PC
};

/** Callback receiving trace records. */
using TraceSink = std::function<void(const TraceRecord &)>;

/** Render one record in the stable textual format. */
std::string formatTrace(IsaKind isa, const TraceRecord &rec);

/** A sink that accumulates records in memory (for tests/tools). */
class TraceBuffer
{
  public:
    TraceSink sink();

    const std::vector<TraceRecord> &records() const { return recs_; }
    void clear() { recs_.clear(); }

  private:
    std::vector<TraceRecord> recs_;
};

} // namespace flexi

#endif // FLEXI_SIM_TRACE_HH
