#include "core_sim.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

double
SimStats::cpi() const
{
    return instructions
        ? static_cast<double>(cycles) / static_cast<double>(instructions)
        : 0.0;
}

CoreSim::CoreSim(const TimingConfig &cfg, const Program &prog,
                 Environment &env)
    : cfg_(cfg), prog_(prog), env_(env),
      dataWidth_(isaDataWidth(cfg.isa)),
      dataMask_(static_cast<uint8_t>((1u << dataWidth_) - 1u)),
      memWords_(isaMemWords(cfg.isa))
{
    if (cfg_.isa != prog_.isa())
        fatal("program assembled for %s but core is %s",
              isaName(prog_.isa()), isaName(cfg_.isa));
    validateTimingConfig(cfg_);
}

uint8_t
CoreSim::mem(unsigned addr) const
{
    if (addr >= memWords_)
        fatal("mem address %u out of range", addr);
    return mem_[addr];
}

void
CoreSim::setAcc(uint8_t v)
{
    acc_ = v & dataMask_;
}

void
CoreSim::setMem(unsigned addr, uint8_t v)
{
    if (addr >= memWords_)
        fatal("mem address %u out of range", addr);
    mem_[addr] = v & dataMask_;
}

uint8_t
CoreSim::memRead(unsigned addr)
{
    addr %= memWords_;
    if (addr == kInputPortAddr) {
        ++stats_.ioReads;
        return env_.readInput() & dataMask_;
    }
    if (addr == kOutputPortAddr)
        return outLatch_;
    ++stats_.memReads;
    return mem_[addr];
}

void
CoreSim::memWrite(unsigned addr, uint8_t value)
{
    addr %= memWords_;
    value &= dataMask_;
    if (addr == kInputPortAddr) {
        // The input bus register is not writeable; the store is a
        // no-op on the fabricated parts.
        return;
    }
    if (addr == kOutputPortAddr) {
        outLatch_ = value;
        ++stats_.ioWrites;
        env_.writeOutput(value);
        return;
    }
    ++stats_.memWrites;
    mem_[addr] = value;
}

uint8_t
CoreSim::readOperand(const Instruction &inst)
{
    if (inst.mode == Mode::Mem) {
        if (cfg_.isa == IsaKind::LoadStore4)
            return memRead(inst.operand);   // register read
        return memRead(inst.operand);
    }
    if (inst.mode == Mode::Imm) {
        uint8_t raw = inst.operand;
        switch (cfg_.isa) {
          case IsaKind::FlexiCore4:
            return raw & 0x0F;
          case IsaKind::FlexiCore8:
            if (inst.op == Op::Ldb)
                return raw;
            // 4-bit immediates are sign-extended to the octet.
            return static_cast<uint8_t>(signExtend(raw, 4)) & 0xFF;
          case IsaKind::ExtAcc4:
            // addi/adci take signed 3-bit immediates; the logical and
            // shift immediates are zero-extended.
            if (inst.op == Op::Add || inst.op == Op::Adc)
                return static_cast<uint8_t>(signExtend(raw, 3)) &
                       dataMask_;
            return raw & 0x07;
          case IsaKind::LoadStore4:
            return raw & dataMask_;
        }
    }
    return 0;
}

bool
CoreSim::condHolds(uint8_t cond, uint8_t value) const
{
    bool n = bit(value, dataWidth_ - 1);
    bool z = (value & dataMask_) == 0;
    bool p = !n && !z;
    // An all-zero mask never fires (hardware AND-mask semantics; the
    // encoders never emit it, but raw program bytes can).
    return ((cond & kCondN) && n) || ((cond & kCondZ) && z) ||
           ((cond & kCondP) && p);
}

void
CoreSim::redirect(unsigned target, unsigned self_addr)
{
    int new_page = env_.pageSwitchOnBranch();
    if (new_page >= 0) {
        page_ = static_cast<unsigned>(new_page);
    } else if (target == self_addr) {
        // A taken branch to itself is the halt idiom: the core spins
        // until power-off. (Only a halt when no page switch fired.)
        halted_ = true;
    }
    pc_ = target & (kPageSize - 1);
}

void
CoreSim::execute(const Instruction &inst)
{
    bool load_store = cfg_.isa == IsaKind::LoadStore4;
    unsigned w = dataWidth_;
    uint8_t m = dataMask_;

    // First ALU input: accumulator, or rd on the load-store machine.
    auto readFirst = [&]() -> uint8_t {
        return load_store ? memRead(inst.rd) : acc_;
    };
    // Result writeback: accumulator or rd. Updates NZP source.
    auto writeResult = [&](unsigned value) {
        uint8_t v = static_cast<uint8_t>(value) & m;
        if (load_store) {
            memWrite(inst.rd, v);
            flagsVal_ = v;
        } else {
            acc_ = v;
        }
    };
    auto addLike = [&](uint8_t b, unsigned cin) {
        unsigned sum = (readFirst() & m) + (b & m) + cin;
        carry_ = (sum >> w) & 1u;
        writeResult(sum);
    };

    switch (inst.op) {
      case Op::Add:
        addLike(readOperand(inst), 0);
        break;
      case Op::Adc:
        addLike(readOperand(inst), carry_ ? 1 : 0);
        break;
      case Op::Sub:
        addLike(static_cast<uint8_t>(~readOperand(inst)), 1);
        break;
      case Op::Swb:
        addLike(static_cast<uint8_t>(~readOperand(inst)),
                carry_ ? 1 : 0);
        break;
      case Op::Nand:
        writeResult(static_cast<uint8_t>(
            ~(readFirst() & readOperand(inst))));
        break;
      case Op::And:
        writeResult(readFirst() & readOperand(inst));
        break;
      case Op::Or:
        writeResult(readFirst() | readOperand(inst));
        break;
      case Op::Xor:
        writeResult(readFirst() ^ readOperand(inst));
        break;
      case Op::Neg: {
        uint8_t a = readFirst() & m;
        carry_ = a == 0;   // 0 - a borrows unless a == 0
        writeResult(static_cast<unsigned>(-static_cast<int>(a)));
        break;
      }
      case Op::Asr:
      case Op::Lsr: {
        uint8_t a = readFirst() & m;
        unsigned amount = inst.mode == Mode::None
            ? 1u : (readOperand(inst) & 0x7);
        bool sign = bit(a, w - 1);
        unsigned v = a;
        for (unsigned i = 0; i < amount; ++i) {
            carry_ = v & 1u;
            v >>= 1;
            if (inst.op == Op::Asr && sign)
                v |= 1u << (w - 1);
        }
        writeResult(v);
        break;
      }
      case Op::Li:
        writeResult(readOperand(inst));
        break;
      case Op::Ldb:
        acc_ = inst.operand;   // full octet, FlexiCore8 only
        break;
      case Op::Load:
        acc_ = memRead(inst.operand) & m;
        break;
      case Op::Store:
        memWrite(inst.operand, acc_);
        break;
      case Op::Xch: {
        uint8_t v = memRead(inst.operand) & m;
        memWrite(inst.operand, acc_);
        acc_ = v;
        break;
      }
      case Op::Mov:
        writeResult(readOperand(inst));
        break;
      case Op::Br:
      case Op::Call:
      case Op::Ret:
        panic("control flow handled in step()");
      case Op::Invalid:
        // Reserved encoding on a DSE core: architected as a no-op.
        break;
    }
}

bool
CoreSim::step()
{
    if (halted_)
        return false;

    // A fetch from a page with no content reads an idle bus (zeros).
    static const std::vector<uint8_t> empty_page;
    const std::vector<uint8_t> &image =
        page_ < prog_.numPages() ? prog_.page(page_) : empty_page;
    DecodeResult dec = decodeAt(cfg_.isa, image, pc_);
    const Instruction &inst = dec.inst;

    TraceRecord rec;
    if (trace_) {
        rec.index = stats_.instructions;
        rec.page = page_;
        rec.pc = pc_;
        rec.inst = inst;
        rec.accBefore = acc_;
    }

    unsigned self = pc_;
    unsigned next = cfg_.isa == IsaKind::LoadStore4
        ? (pc_ + 1) & (kPageSize - 1)
        : (pc_ + dec.bytes) & (kPageSize - 1);

    bool taken = false;
    switch (inst.op) {
      case Op::Br: {
        ++stats_.branches;
        uint8_t test = cfg_.isa == IsaKind::LoadStore4
            ? flagsVal_ : acc_;
        if (condHolds(inst.cond, test)) {
            taken = true;
            ++stats_.takenBranches;
            redirect(inst.target, self);
        } else {
            pc_ = next;
        }
        break;
      }
      case Op::Call:
        ++stats_.branches;
        ++stats_.takenBranches;
        taken = true;
        retReg_ = static_cast<uint8_t>(next);
        redirect(inst.target, self);
        break;
      case Op::Ret:
        ++stats_.branches;
        ++stats_.takenBranches;
        taken = true;
        redirect(retReg_, self);
        break;
      default:
        execute(inst);
        pc_ = next;
        break;
    }

    ++stats_.instructions;
    stats_.fetchedBytes += cfg_.isa == IsaKind::LoadStore4
        ? 2 : dec.bytes;
    stats_.cycles += instructionCycles(cfg_, inst, taken);

    if (trace_) {
        rec.cycle = stats_.cycles;
        rec.accAfter = acc_;
        rec.carryAfter = carry_;
        rec.taken = taken;
        trace_(rec);
    }
    return !halted_;
}

StopReason
CoreSim::run(uint64_t max_instructions)
{
    while (!halted_ && stats_.instructions < max_instructions)
        step();
    return halted_ ? StopReason::Halted : StopReason::Budget;
}

} // namespace flexi
