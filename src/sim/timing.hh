/**
 * @file
 * Microarchitectural timing models (Section 6.2's design space).
 *
 * Three microarchitectures are modeled, each with a wide program bus
 * (fetches a whole instruction per cycle, as in the fabricated
 * FlexiCores) or a bus restricted to 8 bits:
 *
 *  - SingleCycle: 1 cycle per instruction; multi-byte fetches (ldb,
 *    ExtAcc4 br/call, narrow-bus anything) add a cycle each via the
 *    'load byte'-style flag flip-flop.
 *  - Pipelined2: fetch | decode+execute; taken branches flush the
 *    fetch stage (1 bubble).
 *  - MultiCycle: separate fetch and execute cycles (the paper notes
 *    this "would double the core's CPI", Section 3.4).
 *
 * A single-cycle or 2-stage load-store core with an 8-bit bus is
 * impossible (16-bit instructions cannot be fetched in one cycle,
 * Section 6.2) and is rejected at configuration time.
 */

#ifndef FLEXI_SIM_TIMING_HH
#define FLEXI_SIM_TIMING_HH

#include <cstdint>

#include "isa/isa.hh"

namespace flexi
{

/** Pipeline organization. */
enum class MicroArch : uint8_t
{
    SingleCycle,
    Pipelined2,
    MultiCycle,
};

const char *microArchName(MicroArch uarch);

/** Program (instruction) bus width. */
enum class BusWidth : uint8_t
{
    Wide,       ///< a whole instruction per cycle
    Narrow8,    ///< 8 bits per cycle
};

/** A (ISA, microarchitecture, bus) timing configuration. */
struct TimingConfig
{
    IsaKind isa = IsaKind::FlexiCore4;
    MicroArch uarch = MicroArch::SingleCycle;
    BusWidth bus = BusWidth::Wide;
};

/** Throws FatalError for impossible configurations. */
void validateTimingConfig(const TimingConfig &cfg);

/**
 * Cycles consumed by one dynamic instruction.
 *
 * @param cfg the timing configuration
 * @param inst the executed instruction
 * @param branch_taken whether a Br/Call/Ret redirected the PC
 */
unsigned instructionCycles(const TimingConfig &cfg,
                           const Instruction &inst, bool branch_taken);

} // namespace flexi

#endif // FLEXI_SIM_TIMING_HH
