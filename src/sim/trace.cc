#include "trace.hh"

#include "common/logging.hh"
#include "isa/disassembler.hh"

namespace flexi
{

std::string
formatTrace(IsaKind isa, const TraceRecord &rec)
{
    return strfmt("[%u:%3u] %-14s | acc %x->%x c=%d%s | cyc=%lu",
                  rec.page, rec.pc,
                  disassemble(isa, rec.inst).c_str(), rec.accBefore,
                  rec.accAfter, rec.carryAfter ? 1 : 0,
                  rec.taken ? " taken" : "",
                  static_cast<unsigned long>(rec.cycle));
}

TraceSink
TraceBuffer::sink()
{
    return [this](const TraceRecord &rec) { recs_.push_back(rec); };
}

} // namespace flexi
