#include "mmu.hh"

#include "common/logging.hh"

namespace flexi
{

std::vector<uint8_t>
Mmu::onOutput(uint8_t value)
{
    switch (state_) {
      case State::Idle:
        if (value == kMmuEscape0) {
            state_ = State::GotEsc0;
            return {};
        }
        return {value};
      case State::GotEsc0:
        if (value == kMmuEscape1) {
            state_ = State::GotEsc1;
            return {};
        }
        state_ = State::Idle;
        if (value == kMmuEscape0)
            // Restart: the first escape byte flushes, the new one
            // re-arms (longest-match behaviour of the FST).
            return [&] { state_ = State::GotEsc0;
                         return std::vector<uint8_t>{kMmuEscape0}; }();
        return {kMmuEscape0, value};
      case State::GotEsc1:
        state_ = State::Idle;
        pending_ = true;
        pendingPage_ = value & 0xF;
        return {};
    }
    panic("Mmu: bad state");
}

int
Mmu::takePendingPage()
{
    if (!pending_)
        return -1;
    pending_ = false;
    page_ = pendingPage_;
    return static_cast<int>(page_);
}

void
Mmu::reset()
{
    state_ = State::Idle;
    page_ = 0;
    pending_ = false;
    pendingPage_ = 0;
}

PagedEnvironment::PagedEnvironment(Environment &inner)
    : inner_(inner)
{
}

uint8_t
PagedEnvironment::readInput()
{
    return inner_.readInput();
}

void
PagedEnvironment::writeOutput(uint8_t value)
{
    for (uint8_t v : mmu_.onOutput(value))
        inner_.writeOutput(v);
}

int
PagedEnvironment::pageSwitchOnBranch()
{
    return mmu_.takePendingPage();
}

} // namespace flexi
