/**
 * @file
 * Quickstart: assemble a program, run it on a FlexiCore4, inspect
 * outputs, statistics and the physical model.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "sys/flexichip.hh"

using namespace flexi;

int
main()
{
    // A FlexiCore4 system: core + off-chip program memory + IO buses.
    FlexiChip chip(IsaKind::FlexiCore4);

    // The nine-instruction base ISA. r0 is the input bus, r1 the
    // output bus, r2..r7 the on-chip data memory.
    chip.loadProgram(R"(
        ; add 3 to every input sample, forever
        loop:   load r0         ; sample the input bus
                addi 3
                store r1        ; drive the output bus
                nandi 0         ; ACC = 0xF (negative)
                br loop         ; => branch always taken
    )");

    chip.pushInputs({1, 2, 3, 11});
    chip.runUntilOutputs(4);

    std::printf("outputs: ");
    for (uint8_t v : chip.outputs())
        std::printf("%u ", v);
    std::printf("\n");

    const SimStats &stats = chip.stats();
    std::printf("instructions=%lu cycles=%lu taken-branches=%lu\n",
                static_cast<unsigned long>(stats.instructions),
                static_cast<unsigned long>(stats.cycles),
                static_cast<unsigned long>(stats.takenBranches));

    // Physical model: area / power / energy of the fabricated part.
    std::printf("\n%s", chip.physicalReport().c_str());
    std::printf("this run: %.2f ms, %.1f uJ\n",
                chip.elapsedSeconds() * 1e3,
                chip.energyJoules() * 1e6);
    return 0;
}
