/**
 * @file
 * Smart-bandage scenario (Table 1 / Section 3.2): a flexible
 * processor on a disposable wound dressing de-noises a temperature
 * sensor with exponential smoothing and raises an alarm when the
 * smoothed reading crosses a threshold (elevated temperature =
 * possible infection).
 *
 * The program chains the paper's IntAvg and Thresholding kernels on
 * one FlexiCore4 and the example closes with the Section 5.2 battery
 * arithmetic: how many days does a 3 V / 5 mAh flexible printed
 * battery power this patch at one sample per minute?
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sys/flexichip.hh"

using namespace flexi;

int
main()
{
    FlexiChip chip(IsaKind::FlexiCore4);

    // Smooth (y += (x - y)/2) then compare the smoothed value
    // against the alarm threshold of 6 using the sign-split
    // full-range compare; output the smoothed value when calm and
    // 0xF when the alarm fires.
    chip.loadProgram(R"(
        ; r2 = smoothed value y, r4/r5 = scratch
        start:  nandi 0
                xori 0xF
                store r2            ; y = 0
        loop:   load r0             ; x
                add r2              ; x + y (mod 16)
                ; --- halve: ACC >>= 1 (Listing-1 style) ---
                store r4
                nandi 0
                xori 0xF
                store r5
                load r4
                br s3
                nandi 0
                br d3
        s3:     load r5
                addi 4
                store r5
                nandi 0
                br d3
        d3:     load r4
                add r4
                store r4
                br s2
                nandi 0
                br d2
        s2:     load r5
                addi 2
                store r5
                nandi 0
                br d2
        d2:     load r4
                add r4
                store r4
                br s1
                nandi 0
                br d1
        s1:     load r5
                addi 1
                store r5
                nandi 0
                br d1
        d1:     load r5
                store r2            ; y updated
                ; --- alarm iff y >= 6 (y, 6 both < 8: MSB test) ---
                addi -6
                br calm
                nandi 0             ; 0xF = alarm marker
                store r1
                nandi 0
                br loop
        calm:   load r2
                store r1
                nandi 0
                br loop
    )");

    // A day on the wound: calm readings, then a fever spike.
    std::vector<uint8_t> temps = {3, 4, 4, 3, 4, 5, 6, 7, 7, 7, 7, 7};
    chip.pushInputs(temps);
    chip.runUntilOutputs(temps.size());

    std::printf("sample  smoothed/alarm\n");
    for (size_t i = 0; i < temps.size(); ++i) {
        uint8_t out = chip.outputs()[i];
        std::printf("  %2u     %s\n", temps[i],
                    out == 0xF ? "ALARM (wound hot)"
                               : std::to_string(out).c_str());
    }

    // Battery life at one sample per minute with perfect power
    // gating between samples (Section 5.2's arithmetic).
    double cycles_per_sample =
        static_cast<double>(chip.stats().cycles) / temps.size();
    ChipPhysical phys = chip.physical();
    double joules_per_day = phys.staticPowerW *
        (cycles_per_sample / phys.fmaxHz) * 24 * 60;
    double battery_joules = 3.0 * 5e-3 * 3600.0;   // 3 V, 5 mAh
    std::printf("\n%.0f cycles/sample -> %.3f J/day at 1 sample/min"
                "\n3 V 5 mAh printed battery: ~%.0f days of wear\n",
                cycles_per_sample, joules_per_day,
                battery_joules / joules_per_day);
    return 0;
}
