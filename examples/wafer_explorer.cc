/**
 * @file
 * Wafer-yield exploration: "if I fabricate N wafers of each core,
 * what yield should I expect, and what drives the losses?"
 *
 * Runs the Monte-Carlo wafer study for both fabricated cores across
 * several wafers and decomposes the inclusion-zone losses into hard
 * defects vs timing faults at each voltage — the decomposition
 * behind Table 5's numbers.
 */

#include <cstdio>

#include "common/stats.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

int
main()
{
    constexpr int kWafers = 8;

    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        DesignSpec spec = designSpecFor(isa);
        std::printf("\n%s: %u devices, critical path %.1f gate "
                    "delays\n", spec.name.c_str(), spec.devices,
                    spec.critDelayUnits);

        RunningStat y45, y3;
        size_t defect_loss = 0, timing3 = 0, timing45 = 0, total = 0;
        for (int s = 0; s < kWafers; ++s) {
            WaferStudyConfig cfg;
            cfg.isa = isa;
            cfg.seed = 500 + s;
            cfg.gateLevelErrors = false;
            auto res = runWaferStudy(cfg);
            y45.add(res.yield(4.5, true));
            y3.add(res.yield(3.0, true));
            DieModel model(res.spec, cfg.params);
            for (const auto &die : res.dies) {
                if (!die.site.inInclusionZone)
                    continue;
                ++total;
                if (die.sample.hasDefects())
                    ++defect_loss;
                else if (!model.meetsTiming(die.sample, 4.5))
                    ++timing45;
                else if (!model.meetsTiming(die.sample, 3.0))
                    ++timing3;
            }
        }
        std::printf("  inclusion-zone yield: %.0f%% @4.5 V "
                    "(min %.0f%%, max %.0f%%), %.0f%% @3 V\n",
                    y45.mean() * 100, y45.min() * 100,
                    y45.max() * 100, y3.mean() * 100);
        std::printf("  loss decomposition over %zu dies:\n", total);
        std::printf("    hard defects:        %5.1f%%\n",
                    100.0 * defect_loss / total);
        std::printf("    timing fail @4.5 V:  %5.1f%%\n",
                    100.0 * timing45 / total);
        std::printf("    timing fail @3 V only:%4.1f%% (these dies "
                    "work at 4.5 V)\n", 100.0 * timing3 / total);
    }

    std::printf("\nTakeaway (Section 4.1): FlexiCore8's extra "
                "devices cost a few points of defect\nyield, but its "
                "doubled ripple-carry chain is what collapses the "
                "3 V yield.\n");
    return 0;
}
