/**
 * @file
 * Error-detection coding on FlexiCore8 (Table 1: "any flexible
 * microprocessor which transmits or receives data wirelessly must be
 * able to execute computationally inexpensive error detection
 * encoding or decoding").
 *
 * A transmitter-side FlexiCore8 appends a mod-256 checksum and a
 * parity bit to a small packet; the example then corrupts a byte in
 * transit and shows a receiver-side core (the same silicon,
 * reprogrammed in the field) rejecting the packet.
 */

#include <cstdio>
#include <vector>

#include "kernels/fc8_programs.hh"
#include "sys/flexichip.hh"

using namespace flexi;

namespace
{

uint8_t
checksumOf(FlexiChip &chip, const std::vector<uint8_t> &payload)
{
    chip.clearOutputs();
    chip.pushInputs(payload);
    chip.runUntilOutputs(payload.size(), 1000000);
    return chip.outputs().back();   // running sum after last byte
}

} // namespace

int
main()
{
    std::vector<uint8_t> packet = {0x12, 0xC4, 0x07, 0x99, 0x3B};

    // Transmitter: compute the packet checksum on-chip.
    FlexiChip tx(IsaKind::FlexiCore8);
    tx.loadProgram(fc8ProgramSource(Fc8Program::Checksum));
    uint8_t checksum = checksumOf(tx, packet);
    std::printf("tx packet:");
    for (uint8_t b : packet)
        std::printf(" %02x", b);
    std::printf("  | checksum %02x (computed in %lu instructions)\n",
                checksum,
                static_cast<unsigned long>(tx.stats().instructions));

    // The wireless link flips a byte.
    std::vector<uint8_t> received = packet;
    received[2] ^= 0x40;

    // Receiver: same chip design, reprogrammed in the field — it
    // recomputes the checksum over the received payload.
    FlexiChip rx(IsaKind::FlexiCore8);
    rx.loadProgram(fc8ProgramSource(Fc8Program::Checksum));
    uint8_t rx_sum = checksumOf(rx, received);
    std::printf("rx packet:");
    for (uint8_t b : received)
        std::printf(" %02x", b);
    std::printf("  | checksum %02x -> %s\n", rx_sum,
                rx_sum == checksum ? "ACCEPT" : "REJECT (corrupted)");

    // Per-byte parity as a second, cheaper EDC layer.
    FlexiChip par(IsaKind::FlexiCore8);
    par.loadProgram(fc8ProgramSource(Fc8Program::Parity));
    par.pushInputs(packet);
    par.runUntilOutputs(packet.size(), 1000000);
    std::printf("per-byte parity bits:");
    for (uint8_t b : par.outputs())
        std::printf(" %u", b);
    std::printf("\n");

    std::printf("\nenergy: checksum %.2f uJ, parity %.2f uJ per "
                "packet on the 12.5 kHz die\n",
                tx.energyJoules() * 1e6, par.energyJoules() * 1e6);
    return 0;
}
