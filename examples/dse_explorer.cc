/**
 * @file
 * Design-space exploration: sweep every ISA feature combination and
 * microarchitecture, evaluate area / code size / energy on the
 * kernel suite, and print the Pareto-optimal designs — the
 * Section 6 methodology as a reusable tool. The sweep itself lives
 * in src/dse/sweep.cc and fans out over a thread pool (results are
 * identical for any thread count).
 *
 *   $ ./dse_explorer [work_units] [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "dse/sweep.hh"

using namespace flexi;

int
main(int argc, char **argv)
{
    SweepConfig cfg;
    if (argc > 1)
        cfg.workUnits = std::strtoul(argv[1], nullptr, 10);
    if (argc > 2)
        cfg.threads =
            static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));

    auto all = sweepDesignSpace(cfg);

    std::printf("%zu feasible design points (area / code / energy "
                "relative to FlexiCore4)\n\n", all.size());
    std::printf("%-8s %-22s %6s %6s %7s %s\n", "Model", "Features",
                "Area", "Code", "Energy", "Pareto");
    int pareto = 0;
    for (const auto &c : all) {
        pareto += c.pareto;
        std::printf("%-8s %-22s %6.2f %6.2f %7.2f %s\n",
                    c.point.name().c_str(),
                    c.point.features.tag().c_str(), c.area, c.codeRel,
                    c.energyRel, c.pareto ? "  *" : "");
    }
    std::printf("\n%d Pareto-optimal points (*). The paper's pick: "
                "pipelined load-store with an\nintegrated program "
                "memory, pipelined accumulator without one "
                "(Section 6.3).\n", pareto);
    return 0;
}
