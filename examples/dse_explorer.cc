/**
 * @file
 * Design-space exploration: sweep every ISA feature combination and
 * microarchitecture, evaluate area / code size / energy on the
 * kernel suite, and print the Pareto-optimal designs — the
 * Section 6 methodology as a reusable tool.
 *
 *   $ ./dse_explorer [work_units]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "dse/area_model.hh"
#include "dse/code_size.hh"
#include "dse/perf_model.hh"

using namespace flexi;

namespace
{

struct Candidate
{
    DesignPoint point;
    double area = 0.0;
    double codeRel = 0.0;
    double energyRel = 0.0;

    bool
    dominates(const Candidate &other) const
    {
        bool no_worse = area <= other.area &&
                        codeRel <= other.codeRel &&
                        energyRel <= other.energyRel;
        bool better = area < other.area || codeRel < other.codeRel ||
                      energyRel < other.energyRel;
        return no_worse && better;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    size_t work = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

    // Suite-average baseline energy.
    double base_energy = 0.0;
    for (KernelId id : allKernels())
        base_energy += evalFlexiCore4Baseline(id, work, 3).energyJ;
    double base_area = baseCoreArea();

    // Enumerate: feature subsets (the paper's candidates) x operand
    // model x microarchitecture, wide bus.
    std::vector<IsaFeatures> feature_sets;
    feature_sets.push_back(IsaFeatures::none());
    {
        IsaFeatures f;
        f.coalescing = true;
        f.branchFlags = true;
        feature_sets.push_back(f);
    }
    {
        IsaFeatures f;
        f.coalescing = true;
        f.barrelShifter = true;
        f.branchFlags = true;
        feature_sets.push_back(f);
    }
    feature_sets.push_back(IsaFeatures::revised());
    {
        IsaFeatures f = IsaFeatures::revised();
        f.multiplier = true;
        feature_sets.push_back(f);
    }

    std::vector<Candidate> all;
    for (const IsaFeatures &f : feature_sets) {
        for (OperandModel om :
             {OperandModel::Accumulator, OperandModel::LoadStore}) {
            for (MicroArch ua : {MicroArch::SingleCycle,
                                 MicroArch::Pipelined2,
                                 MicroArch::MultiCycle}) {
                Candidate c;
                c.point = {om, ua, BusWidth::Wide, f};
                if (!c.point.feasible())
                    continue;
                c.area = areaOf(c.point).total() / base_area;
                // Code size: measured for the revised sets, idiom
                // estimate otherwise; the load-store ISA is only
                // implemented with the full revised set.
                if (om == OperandModel::LoadStore &&
                    !(f == IsaFeatures::revised()))
                    continue;
                c.codeRel = relativeSuiteCodeSize(f);
                double e = 0.0;
                if (f == IsaFeatures::none() &&
                    om == OperandModel::Accumulator &&
                    ua == MicroArch::SingleCycle) {
                    e = base_energy;
                } else if (f == IsaFeatures::revised()) {
                    for (KernelId id : allKernels())
                        e += evalDsePoint(id, c.point, work, 3)
                                 .energyJ;
                } else {
                    // Feature subsets short of the revised set run
                    // the base binaries (no custom codegen): energy
                    // scales with area at unchanged cycle counts.
                    e = base_energy * c.area *
                        fmaxOf(DesignPoint{om, ua, BusWidth::Wide,
                                           IsaFeatures::none()}) /
                        fmaxOf(c.point);
                }
                c.energyRel = e / base_energy;
                all.push_back(c);
            }
        }
    }

    std::printf("%zu feasible design points (area / code / energy "
                "relative to FlexiCore4)\n\n", all.size());
    std::printf("%-8s %-22s %6s %6s %7s %s\n", "Model", "Features",
                "Area", "Code", "Energy", "Pareto");
    int pareto = 0;
    for (const auto &c : all) {
        bool dominated = false;
        for (const auto &other : all)
            if (other.dominates(c))
                dominated = true;
        pareto += !dominated;
        std::printf("%-8s %-22s %6.2f %6.2f %7.2f %s\n",
                    c.point.name().c_str(),
                    c.point.features.tag().c_str(), c.area, c.codeRel,
                    c.energyRel, dominated ? "" : "  *");
    }
    std::printf("\n%d Pareto-optimal points (*). The paper's pick: "
                "pipelined load-store with an\nintegrated program "
                "memory, pipelined accumulator without one "
                "(Section 6.3).\n", pareto);
    return 0;
}
